package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("wire: client closed")

// RequestError is the client-side form of an Error frame: the server's
// authoritative answer that this request failed, carrying the same code
// taxonomy as the JSON API's ErrorResponse. It does not disturb the
// connection.
type RequestError struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("wire: server error (%s): %s", e.Code, e.Msg)
}

// BackpressureError is the client-side form of a Backpressure frame: the
// server's admission controller refused the request. The binary analogue
// of a 429/503 shed, with the same Retry-After hint.
type BackpressureError struct {
	Code       string
	RetryAfter time.Duration
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("wire: backpressure (%s): retry after %v", e.Code, e.RetryAfter)
}

// IsVersionMismatch reports whether err is the version-negotiation
// failure — the one *ProtocolError a client should not treat as
// transient, and the dispatch WireTransport's cue to fall back to HTTP.
func IsVersionMismatch(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe) && pe.Kind == KindVersion
}

// ClientOptions tune a Client. The zero value means the defaults noted
// on each field.
type ClientOptions struct {
	// DialTimeout bounds connection establishment including the
	// Hello/HelloAck handshake. Default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write — the client side of write
	// backpressure: a peer that stops draining fails the connection
	// instead of wedging callers forever. Default 10s.
	WriteTimeout time.Duration
	// MaxPayload bounds accepted response payloads. Default
	// DefaultMaxPayload.
	MaxPayload int
	// RedialAttempts is how many reconnect-with-resend attempts follow a
	// connection failure with requests in flight before those requests
	// are failed. Default 3.
	RedialAttempts int
	// RedialBackoff is the pause between redial attempts. Default 50ms.
	RedialBackoff time.Duration
	// ClientName travels in the Hello frame, the binary analogue of the
	// JSON API's X-Snoop-Client header (per-client rate limiting).
	ClientName string
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = DefaultMaxPayload
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 50 * time.Millisecond
	}
	return o
}

// Client is a pipelining binary-protocol client over one persistent TCP
// connection. Calls are safe for concurrent use: each carries a
// client-chosen sequence id, the server streams answers back in
// completion order, and a background read loop matches them up. A
// connection failure with calls in flight triggers
// reconnect-with-resend: the client redials, replays every unanswered
// request frame, and the callers never notice. Construct with NewClient;
// Close releases the connection and fails anything still in flight.
type Client struct {
	addr   string
	opts   ClientOptions
	ctx    context.Context // client lifetime: bounds the read loop
	cancel context.CancelFunc

	mu      sync.Mutex
	conn    net.Conn
	reader  *Reader
	seq     uint64
	pending map[uint64]*pendingCall
	verErr  error // latched version-negotiation failure; permanent
	closed  bool
	// recovering is set while a reconnect-with-resend goroutine runs. The
	// redial loop sleeps and dials off the mutex (a held-through recovery
	// would pin every concurrent call — even ctx-expired ones — for up to
	// RedialAttempts × (backoff + DialTimeout)); this flag is what keeps
	// new calls from racing the half-rebuilt connection instead: they
	// register in pending without dialing and the recovery's resend pass
	// picks them up.
	recovering bool

	// Write coalescing: request frames append to wbuf under mu and the
	// connection's flush loop writes the accumulated buffer in one
	// syscall — group commit, so pipelined concurrent calls share write
	// syscalls instead of each paying for their own. flushWake is
	// broadcast when wbuf gains data or conn changes.
	wbuf      []byte
	flushWake *sync.Cond
}

// pendingCall is one in-flight request: the encoded frame (kept for
// resend after a reconnect), the caller's answer channel, and how many
// connection failures have been charged to it — the budget that keeps a
// poison request (one whose replay kills every connection) from holding
// the client in a dial loop forever.
type pendingCall struct {
	frame   []byte
	done    chan callResult
	resends int
}

type callResult struct {
	seq     uint64 // which request this answers (batch demultiplexing)
	typ     FrameType
	payload []byte // copied out of the read buffer
	err     error
}

// NewClient returns a Client for the server at addr. The connection is
// established lazily on the first call.
func NewClient(addr string, opts ClientOptions) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		addr:    addr,
		opts:    opts.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		pending: map[uint64]*pendingCall{},
	}
	c.flushWake = sync.NewCond(&c.mu)
	return c
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Close tears down the connection and fails every in-flight call with
// ErrClientClosed. Further calls fail the same way.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.cancel()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.flushWake.Broadcast()
	c.failAllLocked(ErrClientClosed)
	return nil
}

// Solve round-trips a solve request. req.Seq is assigned by the client.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (SolveResponse, error) {
	res, err := c.roundTrip(ctx, func(seq uint64) []byte {
		req.Seq = seq
		return AppendFrame(nil, TypeSolveReq, AppendSolveRequest(nil, req))
	})
	if err == nil {
		err = unexpectedType(res, TypeSolveResp)
	}
	if err != nil {
		return SolveResponse{}, err
	}
	return DecodeSolveResponse(res.payload)
}

// SolveBatchResult is one point's outcome in a SolveBatch call: either
// the response or a per-point error (a *RequestError or
// *BackpressureError carries the server's answer for that point without
// disturbing its neighbors).
type SolveBatchResult struct {
	Resp SolveResponse
	Err  error
}

// SolveBatch pipelines many solve requests as one batch: every frame is
// queued before the first flush, so the whole batch typically rides one
// write syscall out and a few reads back — the binary analogue of the
// JSON API's POST /v1/batch, and the shape the snoopbench batched mode
// measures. Results are positional (out[i] answers reqs[i]); per-point
// failures land in the point's Err, and only client-level failures
// (closed, version mismatch, ctx cancellation) fail the call as a
// whole. Seq fields are assigned by the client.
func (c *Client) SolveBatch(ctx context.Context, reqs []*SolveRequest) ([]SolveBatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.verErr != nil {
		err := c.verErr
		c.mu.Unlock()
		return nil, err
	}
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	done := make(chan callResult, len(reqs)) // each seq answers at most once
	index := make(map[uint64]int, len(reqs))
	for i, req := range reqs {
		c.seq++
		req.Seq = c.seq
		frame := AppendFrame(nil, TypeSolveReq, AppendSolveRequest(nil, req))
		c.pending[c.seq] = &pendingCall{frame: frame, done: done}
		index[c.seq] = i
		c.sendLocked(frame)
	}
	c.mu.Unlock()

	out := make([]SolveBatchResult, len(reqs))
	for len(index) > 0 {
		select {
		case res := <-done:
			i, ok := index[res.seq]
			if !ok {
				continue // duplicate answer for an already-settled point
			}
			delete(index, res.seq)
			err := res.err
			if err == nil {
				err = unexpectedType(res, TypeSolveResp)
			}
			if err != nil {
				out[i].Err = err
				continue
			}
			out[i].Resp, out[i].Err = DecodeSolveResponse(res.payload)
		case <-ctx.Done():
			c.mu.Lock()
			for seq := range index {
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// SolveBest round-trips a solvebest request. req.Seq is assigned by the
// client.
func (c *Client) SolveBest(ctx context.Context, req *SolveBestRequest) (SolveBestResponse, error) {
	res, err := c.roundTrip(ctx, func(seq uint64) []byte {
		req.Seq = seq
		return AppendFrame(nil, TypeSolveBestReq, AppendSolveBestRequest(nil, req))
	})
	if err == nil {
		err = unexpectedType(res, TypeSolveBestResp)
	}
	if err != nil {
		return SolveBestResponse{}, err
	}
	return DecodeSolveBestResponse(res.payload)
}

// Sweep round-trips a sweep request. req.Seq is assigned by the client.
func (c *Client) Sweep(ctx context.Context, req *SweepRequest) (SweepResponse, error) {
	res, err := c.roundTrip(ctx, func(seq uint64) []byte {
		req.Seq = seq
		return AppendFrame(nil, TypeSweepReq, AppendSweepRequest(nil, req))
	})
	if err == nil {
		err = unexpectedType(res, TypeSweepResp)
	}
	if err != nil {
		return SweepResponse{}, err
	}
	return DecodeSweepResponse(res.payload)
}

// Ping round-trips a liveness probe, reporting the server's drain state.
func (c *Client) Ping(ctx context.Context) (Pong, error) {
	res, err := c.roundTrip(ctx, func(seq uint64) []byte {
		return AppendFrame(nil, TypePing, AppendPing(nil, &Ping{Seq: seq}))
	})
	if err == nil {
		err = unexpectedType(res, TypePong)
	}
	if err != nil {
		return Pong{}, err
	}
	return DecodePong(res.payload)
}

// unexpectedType maps a non-want response onto the error taxonomy:
// Error frames become *RequestError, Backpressure frames become
// *BackpressureError, anything else is a malformed conversation.
func unexpectedType(res callResult, want FrameType) error {
	switch res.typ {
	case want:
		return nil
	case TypeError:
		m, err := DecodeError(res.payload)
		if err != nil {
			return err
		}
		return &RequestError{Code: m.Code, Msg: m.Msg}
	case TypeBackpressure:
		m, err := DecodeBackpressure(res.payload)
		if err != nil {
			return err
		}
		return &BackpressureError{Code: m.Code, RetryAfter: time.Duration(m.RetryAfterMS) * time.Millisecond}
	default:
		return errMalformed("server answered a %v request with a %v frame", want, res.typ)
	}
}

// roundTrip registers a pending call, sends its frame, and waits for the
// matching response or ctx cancellation. encode receives the assigned
// sequence id and returns the complete request frame.
func (c *Client) roundTrip(ctx context.Context, encode func(seq uint64) []byte) (callResult, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return callResult{}, ErrClientClosed
	}
	if c.verErr != nil {
		err := c.verErr
		c.mu.Unlock()
		return callResult{}, err
	}
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return callResult{}, err
	}
	c.seq++
	seq := c.seq
	call := &pendingCall{frame: encode(seq), done: make(chan callResult, 1)}
	c.pending[seq] = call
	c.sendLocked(call.frame)
	c.mu.Unlock()

	select {
	case res := <-call.done:
		if res.err != nil {
			return callResult{}, res.err
		}
		return res, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return callResult{}, ctx.Err()
	}
}

// ensureConnLocked dials and handshakes if no connection is live. While
// a recovery goroutine runs it reports success without dialing: the
// caller's pending entry rides the recovery's resend pass, and dialing
// here would race the half-rebuilt connection.
func (c *Client) ensureConnLocked() error {
	if c.conn != nil || c.recovering {
		return nil
	}
	return c.dialLocked()
}

// dialLocked establishes a connection while holding the mutex (the
// first-call fast path, where nothing else is in flight to block). A
// server acking a version outside this client's range latches verErr —
// the permanent failure WireTransport's HTTP fallback keys on.
func (c *Client) dialLocked() error {
	conn, r, err := c.dial()
	if err != nil {
		if IsVersionMismatch(err) {
			c.verErr = err
		}
		return err
	}
	c.installLocked(conn, r)
	return nil
}

// dial establishes a connection: TCP with keepalive, then the
// Hello/HelloAck negotiation. It touches no client state beyond
// immutable fields, so the recovery goroutine may call it without
// holding the mutex.
func (c *Client) dial() (net.Conn, *Reader, error) {
	d := net.Dialer{Timeout: c.opts.DialTimeout, KeepAlive: 30 * time.Second}
	conn, err := d.DialContext(c.ctx, "tcp", c.addr)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	deadline := time.Now().Add(c.opts.DialTimeout)
	_ = conn.SetDeadline(deadline)
	hello := AppendFrame(nil, TypeHello, AppendHello(nil, &Hello{
		MinVersion: MinVersion, MaxVersion: MaxVersion, ClientName: c.opts.ClientName,
	}))
	if _, err := conn.Write(hello); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("wire: handshake write: %w", err)
	}
	r := NewReader(conn, c.opts.MaxPayload)
	f, err := r.Next()
	if err != nil {
		_ = conn.Close()
		if IsVersionMismatch(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("wire: handshake read: %w", err)
	}
	if f.Type != TypeHelloAck {
		_ = conn.Close()
		return nil, nil, errMalformed("handshake: expected hello_ack, got %v", f.Type)
	}
	ack, err := DecodeHelloAck(f.Payload)
	if err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	if ack.Version < MinVersion || ack.Version > MaxVersion {
		_ = conn.Close()
		return nil, nil, &ProtocolError{Kind: KindVersion, Detail: fmt.Sprintf(
			"server negotiated version %d, this client speaks %d..%d", ack.Version, MinVersion, MaxVersion)}
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, r, nil
}

// installLocked makes a freshly handshaken connection the live one and
// starts its read and flush loops.
func (c *Client) installLocked(conn net.Conn, r *Reader) {
	c.conn = conn
	c.reader = r
	// Frames buffered for the previous connection are covered by
	// resendLocked (their calls are still pending); flushing them here
	// would only duplicate the resends.
	c.wbuf = nil
	c.flushWake.Broadcast() // a superseded flush loop exits on this
	go c.readLoop(c.ctx, conn, r)
	//lint:allow spawnbound flushLoop exits when conn is superseded or the client closes: every path that replaces c.conn broadcasts flushWake, waking the Wait it blocks on
	go c.flushLoop(conn)
}

// sendLocked queues frame for the connection's flush loop — group
// commit: concurrent pipelined calls accumulate in wbuf and ride one
// write syscall. A write failure surfaces in the flush loop and
// triggers recovery (redial + resend), so the caller's pending entry —
// registered before the send — is replayed or failed; either way its
// done channel fires.
func (c *Client) sendLocked(frame []byte) {
	if c.conn == nil {
		c.recoverLocked(errors.New("wire: connection lost"))
		return
	}
	c.wbuf = append(c.wbuf, frame...)
	c.flushWake.Broadcast()
}

// flushLoop drains wbuf onto conn, one syscall per accumulated batch,
// until conn is superseded or the client closes. A failed or timed-out
// write (the client side of write backpressure) reports through
// connFailed exactly as a read failure would.
func (c *Client) flushLoop(conn net.Conn) {
	c.mu.Lock()
	for {
		for c.conn == conn && len(c.wbuf) == 0 {
			c.flushWake.Wait()
		}
		if c.conn != conn {
			c.mu.Unlock()
			return
		}
		buf := c.wbuf
		c.wbuf = nil
		c.mu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
		if _, err := conn.Write(buf); err != nil {
			c.connFailed(conn, fmt.Errorf("wire: write: %w", err))
			return
		}
		c.mu.Lock()
	}
}

// readLoop decodes response frames and delivers them to their pending
// calls until the connection or the client dies. A connection failure
// with calls in flight hands off to recovery.
func (c *Client) readLoop(ctx context.Context, conn net.Conn, r *Reader) {
	for ctx.Err() == nil {
		f, err := r.Next()
		if err != nil {
			c.connFailed(conn, fmt.Errorf("wire: read: %w", err))
			return
		}
		switch f.Type {
		case TypeSolveResp, TypeSolveBestResp, TypeSweepResp, TypePong, TypeError, TypeBackpressure:
			seq, ok := PeekSeq(f.Payload)
			if !ok {
				c.connFailed(conn, errMalformed("%v response without sequence id", f.Type))
				return
			}
			c.deliver(seq, callResult{typ: f.Type, payload: append([]byte(nil), f.Payload...)})
		default:
			c.connFailed(conn, errMalformed("unexpected %v frame from server", f.Type))
			return
		}
	}
}

// deliver hands a response to its pending call, if it is still wanted
// (the caller may have given up on ctx cancellation).
func (c *Client) deliver(seq uint64, res callResult) {
	c.mu.Lock()
	call := c.pending[seq]
	delete(c.pending, seq)
	c.mu.Unlock()
	if call != nil {
		res.seq = seq
		call.done <- res
	}
}

// connFailed is the read loop's exit report: if conn is still the live
// connection, tear it down and recover the in-flight calls.
func (c *Client) connFailed(conn net.Conn, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != conn {
		return // a newer connection superseded this loop already
	}
	c.conn = nil
	_ = conn.Close()
	c.flushWake.Broadcast()
	c.recoverLocked(cause)
}

// recoverLocked triages a connection failure: permanent failures (client
// closed, protocol violation) fail the in-flight calls on the spot;
// transient ones charge each call's resend budget and hand off to a
// recover goroutine, which redials and resends off the mutex. The lock
// is held only for this triage, so concurrent calls — in particular
// ctx-expired callers that need the lock just to abandon their pending
// entry — are never pinned behind the redial loop's sleeps and dials.
func (c *Client) recoverLocked(cause error) {
	if c.closed {
		c.failAllLocked(ErrClientClosed)
		return
	}
	// A framing-layer failure is not a transient connection loss: the
	// peer violated the protocol, and replaying the same bytes at it
	// would loop. Fail the in-flight calls instead of redialing.
	var pe *ProtocolError
	if errors.As(cause, &pe) {
		c.failAllLocked(cause)
		return
	}
	if c.recovering {
		// The running recovery's resend pass replays everything still in
		// pending — including calls registered after it started. Charging
		// resend budget again here would double-bill one failure.
		return
	}
	// Charge the failure to every in-flight call and fail the ones that
	// have exhausted their resend budget, so one request that reliably
	// kills the connection cannot pin the healthy ones in perpetual
	// reconnection.
	for seq, call := range c.pending {
		call.resends++
		if call.resends > c.opts.RedialAttempts {
			delete(c.pending, seq)
			call.done <- callResult{seq: seq, err: fmt.Errorf("wire: request failed after %d resends: %w", call.resends-1, cause)}
		}
	}
	if len(c.pending) == 0 {
		return // nothing in flight; the next call dials fresh
	}
	c.recovering = true
	//lint:allow spawnbound recover's redial loop runs at most RedialAttempts iterations, each bounded by backoff + DialTimeout, and every exit path clears recovering
	go c.recover(cause)
}

// recover is reconnect-with-resend: redial (bounded attempts with
// backoff) and replay every unanswered request frame; if recovery fails,
// fail them all with the last error. It runs in its own goroutine and
// takes the mutex only to inspect state and to install/resend — the
// sleeps and dials that dominate its runtime happen unlocked.
func (c *Client) recover(cause error) {
	lastErr := cause
	for attempt := 0; attempt < c.opts.RedialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.opts.RedialBackoff)
		}
		c.mu.Lock()
		if c.closed || c.ctx.Err() != nil {
			c.finishRecoverLocked(ErrClientClosed)
			return
		}
		if len(c.pending) == 0 {
			// Every in-flight caller gave up (ctx cancellation) while we
			// were redialing; the next call dials fresh.
			c.recovering = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		conn, r, err := c.dial()

		c.mu.Lock()
		if c.closed {
			if err == nil {
				_ = conn.Close()
			}
			c.finishRecoverLocked(ErrClientClosed)
			return
		}
		if err != nil {
			lastErr = err
			if IsVersionMismatch(err) {
				c.verErr = err
				c.finishRecoverLocked(err)
				return
			}
			c.mu.Unlock()
			continue
		}
		c.installLocked(conn, r)
		if err := c.resendLocked(); err != nil {
			lastErr = err
			c.mu.Unlock()
			continue
		}
		c.recovering = false
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.finishRecoverLocked(lastErr)
}

// finishRecoverLocked ends a failed recovery: fail everything still
// pending with err and clear the recovering flag. Called with the mutex
// held; releases it.
func (c *Client) finishRecoverLocked(err error) {
	c.failAllLocked(err)
	c.recovering = false
	c.mu.Unlock()
}

// resendLocked replays every pending request frame, in sequence order
// for determinism, on the freshly dialed connection.
func (c *Client) resendLocked() error {
	seqs := make([]uint64, 0, len(c.pending))
	for seq := range c.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		conn := c.conn
		if conn == nil {
			return errors.New("wire: connection lost during resend")
		}
		_ = conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
		if _, err := conn.Write(c.pending[seq].frame); err != nil {
			c.conn = nil
			_ = conn.Close()
			c.flushWake.Broadcast() // the dead conn's flush loop exits on this
			return fmt.Errorf("wire: resend: %w", err)
		}
	}
	return nil
}

// failAllLocked fails every pending call with err and clears the map.
func (c *Client) failAllLocked(err error) {
	for seq, call := range c.pending {
		delete(c.pending, seq)
		call.done <- callResult{seq: seq, err: err}
	}
}
