package stats

import (
	"errors"
	"fmt"
	"math"
)

// BatchMeans implements the classical method of batch means for estimating
// steady-state simulation output: consecutive observations are grouped into
// fixed-size batches, each batch contributes its mean, and a confidence
// interval is formed over the (approximately independent) batch means.
//
// The zero value is not usable; construct with NewBatchMeans.
type BatchMeans struct {
	batchSize int64
	current   Summary
	batches   []float64
}

// NewBatchMeans creates a batch-means accumulator with the given batch size.
func NewBatchMeans(batchSize int64) (*BatchMeans, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("stats: batch size %d must be positive", batchSize)
	}
	return &BatchMeans{batchSize: batchSize}, nil
}

// Add records one observation, closing the current batch if it is full.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() >= b.batchSize {
		b.batches = append(b.batches, b.current.Mean())
		b.current = Summary{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// BatchSize returns the configured batch size.
func (b *BatchMeans) BatchSize() int64 { return b.batchSize }

// GrandMean returns the mean over completed batches.
func (b *BatchMeans) GrandMean() (float64, error) {
	if len(b.batches) == 0 {
		return 0, errors.New("stats: no completed batches")
	}
	var s Summary
	for _, m := range b.batches {
		s.Add(m)
	}
	return s.Mean(), nil
}

// ConfidenceInterval returns a Student-t interval over the batch means.
// At least two completed batches are required.
func (b *BatchMeans) ConfidenceInterval(conf float64) (Interval, error) {
	if len(b.batches) < 2 {
		return Interval{}, fmt.Errorf("stats: need >=2 batches, have %d", len(b.batches))
	}
	var s Summary
	for _, m := range b.batches {
		s.Add(m)
	}
	return s.ConfidenceInterval(conf)
}

// LagOneCorrelation estimates the lag-1 autocorrelation of the batch means.
// Values near zero indicate the batches are large enough to be treated as
// independent; strongly positive values suggest the batch size should grow.
func (b *BatchMeans) LagOneCorrelation() (float64, error) {
	n := len(b.batches)
	if n < 3 {
		return 0, fmt.Errorf("stats: need >=3 batches for lag-1 correlation, have %d", n)
	}
	var s Summary
	for _, m := range b.batches {
		s.Add(m)
	}
	mean, variance := s.Mean(), s.Variance()
	if variance == 0 {
		return 0, nil
	}
	var cov float64
	for i := 0; i+1 < n; i++ {
		cov += (b.batches[i] - mean) * (b.batches[i+1] - mean)
	}
	cov /= float64(n - 1)
	return cov / variance, nil
}

// RelativeError returns the interval half-width divided by the grand mean,
// a common stopping criterion for sequential simulation runs.
func (b *BatchMeans) RelativeError(conf float64) (float64, error) {
	iv, err := b.ConfidenceInterval(conf)
	if err != nil {
		return 0, err
	}
	if iv.Mean == 0 {
		return math.Inf(1), nil
	}
	return iv.HalfWidth / math.Abs(iv.Mean), nil
}

// TimeWeighted accumulates a time-weighted average, e.g. average queue
// length over simulated cycles: Observe(value, duration).
//
// The zero value is ready to use.
type TimeWeighted struct {
	area  float64
	total float64
	min   float64
	max   float64
	some  bool
}

// Observe records that the tracked quantity held value for duration units
// of time. Negative durations are ignored.
func (t *TimeWeighted) Observe(value, duration float64) {
	if duration < 0 {
		return
	}
	if !t.some {
		t.min, t.max = value, value
		t.some = true
	} else {
		if value < t.min {
			t.min = value
		}
		if value > t.max {
			t.max = value
		}
	}
	t.area += value * duration
	t.total += duration
}

// Mean returns the time-weighted mean (0 if no time observed).
func (t *TimeWeighted) Mean() float64 {
	if t.total == 0 {
		return 0
	}
	return t.area / t.total
}

// Total returns the total observed time.
func (t *TimeWeighted) Total() float64 { return t.total }

// Min returns the smallest observed value.
func (t *TimeWeighted) Min() float64 { return t.min }

// Max returns the largest observed value.
func (t *TimeWeighted) Max() float64 { return t.max }
