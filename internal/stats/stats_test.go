package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("zero-value summary not all zeros: %v", s.String())
	}
}

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-12) {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, left, right Summary
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 1
		whole.Add(x)
		if i < 250 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", left.Min(), left.Max(), whole.Min(), whole.Max())
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty: no change
	if a.N() != before.N() || a.Mean() != before.Mean() {
		t.Fatalf("merge with empty changed summary")
	}
	b.Merge(a) // empty absorbing non-empty
	if b.N() != 2 || !almostEqual(b.Mean(), 2, 1e-12) {
		t.Fatalf("empty.Merge(nonempty) wrong: %v", b.String())
	}
}

// Property: mean always lies within [min, max] and variance is non-negative.
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// bound magnitude to avoid overflow artifacts in m2
			if math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = ok && s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
			ok = ok && s.Variance() >= -1e-12
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is order-insensitive for mean and variance.
func TestSummaryMergeCommutesQuick(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0:0]
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e50 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, c, d Summary
		for _, x := range xs {
			a.Add(x)
			c.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			d.Add(y)
		}
		a.Merge(b) // xs then ys
		d.Merge(c) // ys then xs
		if a.N() != d.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(a.Mean())
		return almostEqual(a.Mean(), d.Mean(), 1e-8*scale) &&
			almostEqual(a.Variance(), d.Variance(), 1e-6*(1+a.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p    float64
		df   int64
		want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 5, 2.571},
		{0.975, 10, 2.228},
		{0.975, 30, 2.042},
		{0.95, 10, 1.812},
		{0.995, 10, 3.169},
	}
	for _, c := range cases {
		got, err := TQuantile(c.p, c.df)
		if err != nil {
			t.Fatalf("TQuantile(%v, %d): %v", c.p, c.df, err)
		}
		if !almostEqual(got, c.want, 5e-3) {
			t.Errorf("TQuantile(%v, %d) = %v, want ~%v", c.p, c.df, got, c.want)
		}
	}
	if got, err := TQuantile(0.5, 7); err != nil || got != 0 {
		t.Errorf("TQuantile(0.5, 7) = %v, %v; want 0", got, err)
	}
	if _, err := TQuantile(0.975, 0); err == nil {
		t.Error("TQuantile with df=0 should error")
	}
	if _, err := TQuantile(1.5, 10); err == nil {
		t.Error("TQuantile with p outside (0,1) should error")
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, df := range []int64{1, 3, 7, 25} {
		for _, x := range []float64{0, 0.5, 1.3, 4} {
			lo, errLo := TCDF(-x, df)
			hi, errHi := TCDF(x, df)
			if errLo != nil || errHi != nil {
				t.Fatalf("TCDF df=%d x=%v: %v, %v", df, x, errLo, errHi)
			}
			if !almostEqual(lo+hi, 1, 1e-10) {
				t.Errorf("TCDF symmetry broken df=%d x=%v: %v + %v != 1", df, x, lo, hi)
			}
		}
	}
	if got, err := TCDF(0, 9); err != nil || !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("TCDF(0) = %v, %v; want 0.5", got, err)
	}
	if _, err := TCDF(math.NaN(), 9); err == nil {
		t.Error("TCDF of NaN should error")
	}
	if _, err := TCDF(1, 0); err == nil {
		t.Error("TCDF with df=0 should error")
	}
}

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 0, false},
		{1, 1 + 1e-12, 1e-9, true},
		{1e9, 1e9 * (1 + 1e-10), 1e-9, true}, // relative scaling above 1
		{0, 1e-12, 1e-9, true},               // absolute near zero
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), 1e9, false},
		{math.NaN(), math.NaN(), 1e9, false},
		{math.NaN(), 1, 1e9, false},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEq(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 should be 0")
	}
	if RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 should be 1")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.37, 0.5, 0.99} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical check: ~95% of intervals over N(0,1) samples should cover 0.
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		var s Summary
		for j := 0; j < 30; j++ {
			s.Add(rng.NormFloat64())
		}
		iv, err := s.ConfidenceInterval(0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI empirical coverage = %v, want in [0.90, 0.99]", frac)
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	var s Summary
	if _, err := s.ConfidenceInterval(0.95); err == nil {
		t.Error("expected error for empty summary")
	}
	s.Add(1)
	if _, err := s.ConfidenceInterval(0.95); err == nil {
		t.Error("expected error for single observation")
	}
	s.Add(2)
	if _, err := s.ConfidenceInterval(1.5); err == nil {
		t.Error("expected error for confidence outside (0,1)")
	}
	if _, err := s.ConfidenceInterval(0.95); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIntervalAccessors(t *testing.T) {
	iv := Interval{Mean: 10, HalfWidth: 2, Confidence: 0.95, N: 5}
	if iv.Lo() != 8 || iv.Hi() != 12 {
		t.Errorf("Lo/Hi = %v/%v, want 8/12", iv.Lo(), iv.Hi())
	}
	if !iv.Contains(9) || iv.Contains(13) {
		t.Error("Contains wrong")
	}
	if !almostEqual(iv.RelHalfWidth(), 0.2, 1e-12) {
		t.Errorf("RelHalfWidth = %v, want 0.2", iv.RelHalfWidth())
	}
	zero := Interval{}
	if !math.IsInf(zero.RelHalfWidth(), 1) {
		t.Error("RelHalfWidth of zero mean should be +Inf")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{9, 1, 3, 7, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 3}, {0.5, 5}, {0.75, 7}, {1, 9},
	}
	for _, c := range cases {
		got, err := Quantile(data, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// input must not be modified
	if data[0] != 9 {
		t.Error("Quantile modified its input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := Quantile(data, -0.1); err == nil {
		t.Error("expected error for q<0")
	}
	if got, err := Quantile([]float64{4}, 0.9); err != nil || got != 4 {
		t.Errorf("single-element quantile = %v, %v", got, err)
	}
}

func TestBatchMeans(t *testing.T) {
	bm, err := NewBatchMeans(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		bm.Add(5 + rng.NormFloat64())
	}
	if bm.Batches() != 100 {
		t.Fatalf("Batches = %d, want 100", bm.Batches())
	}
	if bm.BatchSize() != 10 {
		t.Fatalf("BatchSize = %d, want 10", bm.BatchSize())
	}
	gm, err := bm.GrandMean()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gm, 5, 0.15) {
		t.Errorf("GrandMean = %v, want ~5", gm)
	}
	iv, err := bm.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(5) {
		t.Errorf("interval %v should contain 5", iv)
	}
	rho, err := bm.LagOneCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.3 {
		t.Errorf("iid batches should have small lag-1 correlation, got %v", rho)
	}
	rel, err := bm.RelativeError(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 0 || rel > 0.1 {
		t.Errorf("RelativeError = %v, want small positive", rel)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := NewBatchMeans(0); err == nil {
		t.Error("expected error for batch size 0")
	}
	bm, _ := NewBatchMeans(5)
	if _, err := bm.GrandMean(); err == nil {
		t.Error("expected error with no batches")
	}
	if _, err := bm.ConfidenceInterval(0.95); err == nil {
		t.Error("expected error with <2 batches")
	}
	if _, err := bm.LagOneCorrelation(); err == nil {
		t.Error("expected error with <3 batches")
	}
	for i := 0; i < 10; i++ {
		bm.Add(float64(i))
	}
	if bm.Batches() != 2 {
		t.Fatalf("Batches = %d, want 2", bm.Batches())
	}
	if _, err := bm.ConfidenceInterval(0.95); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBatchMeansConstantData(t *testing.T) {
	bm, _ := NewBatchMeans(4)
	for i := 0; i < 40; i++ {
		bm.Add(2.5)
	}
	rho, err := bm.LagOneCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Errorf("constant data lag-1 correlation = %v, want 0", rho)
	}
	iv, err := bm.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Mean != 2.5 || iv.HalfWidth != 0 {
		t.Errorf("constant interval = %v", iv)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	tw.Observe(2, 10) // queue length 2 for 10 cycles
	tw.Observe(4, 10)
	if !almostEqual(tw.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", tw.Mean())
	}
	if tw.Total() != 20 {
		t.Errorf("Total = %v, want 20", tw.Total())
	}
	if tw.Min() != 2 || tw.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", tw.Min(), tw.Max())
	}
	tw.Observe(100, -5) // ignored
	if tw.Total() != 20 {
		t.Error("negative duration should be ignored")
	}
	// zero-duration observation still updates extremes
	tw.Observe(0, 0)
	if tw.Min() != 0 {
		t.Errorf("Min after zero-duration observe = %v, want 0", tw.Min())
	}
}

// Property: time-weighted mean lies in [min, max] of observed values.
func TestTimeWeightedBoundsQuick(t *testing.T) {
	f := func(vals []float64, durs []uint8) bool {
		var tw TimeWeighted
		n := len(vals)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e50 {
				continue
			}
			tw.Observe(v, float64(durs[i]))
		}
		if tw.Total() == 0 {
			return true
		}
		return tw.Mean() >= tw.Min()-1e-9 && tw.Mean() <= tw.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
