// Package stats provides the sample-statistics machinery used by the
// detailed simulator and the experiment harness: running summaries,
// Student-t confidence intervals, and batch-means analysis for steady-state
// simulation output.
//
// Everything here is deliberately dependency-free (stdlib math only) and
// allocation-light so it can run inside the simulator's hot loop.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ApproxEq reports whether a and b agree to within tol, relative to the
// larger magnitude once that magnitude exceeds 1 (so tol behaves as an
// absolute tolerance near zero and a relative one for large values). A
// tolerance of zero demands exact equality. NaN compares unequal to
// everything, including itself; equal infinities compare equal.
//
// This is the repo's one sanctioned floating-point equality: the floateq
// analyzer forbids raw == / != between floats everywhere else.
func ApproxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true // handles exact matches and equal infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities differ by more than any tolerance
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Summary accumulates a running sample summary using Welford's online
// algorithm, which is numerically stable for long simulation runs.
//
// The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN records the same observation value n times (useful for weighted
// tallies such as "k cycles at queue length q").
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds another summary into s (parallel-run combination).
// Uses the Chan et al. pairwise update.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
	s.sum += o.sum
}

// N returns the number of observations recorded.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance (0 if fewer than two
// observations have been recorded).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// String formats the summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Interval is a two-sided confidence interval for a mean.
type Interval struct {
	Mean       float64
	HalfWidth  float64
	Confidence float64 // e.g. 0.95
	N          int64
}

// Lo returns the lower endpoint of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper endpoint of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo() && x <= iv.Hi() }

// RelHalfWidth returns HalfWidth/|Mean| (infinite for zero mean).
func (iv Interval) RelHalfWidth() float64 {
	if iv.Mean == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Mean)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.6g (%.0f%%, n=%d)",
		iv.Mean, iv.HalfWidth, iv.Confidence*100, iv.N)
}

// ConfidenceInterval returns a Student-t confidence interval for the mean of
// the observations recorded in s. conf must be in (0,1), commonly 0.95.
func (s *Summary) ConfidenceInterval(conf float64) (Interval, error) {
	if conf <= 0 || conf >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", conf)
	}
	if s.n < 2 {
		return Interval{}, errors.New("stats: need at least 2 observations for an interval")
	}
	t, err := TQuantile(1-(1-conf)/2, s.n-1)
	if err != nil {
		return Interval{}, err
	}
	return Interval{
		Mean:       s.Mean(),
		HalfWidth:  t * s.StdErr(),
		Confidence: conf,
		N:          s.n,
	}, nil
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, computed by inverting the regularized incomplete beta
// function via bisection on the CDF. Accuracy is ample for confidence
// intervals (abs error < 1e-9 in t). df must be positive and p must lie
// in (0,1).
func TQuantile(p float64, df int64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: t distribution needs positive degrees of freedom, got %d", df)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: t quantile probability %v outside (0,1)", p)
	}
	if ApproxEq(p, 0.5, 0) {
		return 0, nil
	}
	// The CDF is monotone; bracket then bisect.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := TCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// TCDF returns P(T <= t) for Student's t with df degrees of freedom.
// df must be positive and t must not be NaN.
func TCDF(t float64, df int64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: t distribution needs positive degrees of freedom, got %d", df)
	}
	if math.IsNaN(t) {
		return 0, errors.New("stats: t CDF of NaN")
	}
	v := float64(df)
	x := v / (v + t*t)
	// P(T<=t) = 1 - 0.5*I_x(v/2, 1/2) for t>=0, symmetric otherwise.
	ib := RegIncBeta(v/2, 0.5, x)
	if t >= 0 {
		return 1 - 0.5*ib, nil
	}
	return 0.5 * ib, nil
}

// RegIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Lentz's method), following the
// classic numerical-recipes formulation.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Quantile returns the q-quantile (0<=q<=1) of the data slice using linear
// interpolation between order statistics. The slice is not modified.
func Quantile(data []float64, q float64) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("stats: empty data")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
