// Package obs is the observability layer of the repository: a stdlib-only,
// concurrency-safe metrics registry (counters, gauges, histograms with
// fixed buckets) with Prometheus text-format exposition and an expvar
// bridge.
//
// The design point is the solver hot path: recording an event costs one or
// two atomic operations and never allocates, so instrumentation can stay
// on permanently in library code (the cold-solve median is the benchmark
// budget it must not move). Series are materialized once — instrumented
// packages create their metrics at init time (or memoize per label set)
// and pay only the atomic update per event; the registry lookup happens at
// creation, not at observation.
//
// The package sits at the very bottom of the import graph: it imports only
// the standard library, so every layer (internal/mva, internal/resilience,
// the root package, cmd/snoopd) can report into the shared Default
// registry without cycles.
//
// Metric identity follows the Prometheus data model: a family (name, type,
// help) holds one series per distinct label set. Asking the registry for
// the same name and labels again returns the same instance, so package
// init order never double-registers.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// floatBits and floatFromBits name the IEEE-754 reinterpretations used by
// the lock-free float accumulators.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Label is one name=value pair attached to a series.
type Label struct {
	Name, Value string
}

// L builds a Label (shorthand for composite-literal noise at call sites).
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metric is the per-series state behind one label set of a family.
type metric interface {
	// expose appends the series' exposition lines. fullName is the family
	// name, labels the canonical rendering ("" or `{a="b"}`).
	expose(b *strings.Builder, fullName, labels string)
	// snapshot returns the expvar representation of the series.
	snapshot() any
}

// family is one metric family: a name with a fixed type and help string
// and one series per label set.
type family struct {
	name, help, typ string
	series          map[string]metric // canonical label rendering → series
}

// Registry is a set of metric families. The zero value is not usable;
// construct with NewRegistry (or use Default). All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry that library instrumentation
// (internal/mva, internal/resilience, the campaign runner, …) reports
// into; cmd/snoopd exposes it at /metrics.
var Default = NewRegistry()

// lookup returns the series for (name, labels), creating it with mk on
// first use. It panics when name is already registered as a different
// metric type or with different help — mixed-type families cannot be
// exposed and the mismatch is a programming error at the call site.
func (r *Registry) lookup(name, typ, help string, labels []Label, mk func() metric) metric {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: internal invariant violated: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
	}
	return m
}

// Counter returns the monotonically increasing counter named name with the
// given labels, creating it on first use. Repeated calls with the same
// name and labels return the same counter. It panics when name already
// names a metric of a different type.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, "counter", help, labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: internal invariant violated: counter series holds a different type")
	}
	return c
}

// Gauge returns the gauge named name with the given labels, creating it on
// first use. It panics when name already names a metric of a different
// type.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(name, "gauge", help, labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: internal invariant violated: gauge series holds a different type")
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — the bridge for state that already has its own counters (e.g. the
// solve cache's Stats). Re-registering the same name and labels replaces
// fn. It panics when name already names a metric of a different type.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: "gauge", series: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != "gauge" {
		panic(fmt.Sprintf("obs: internal invariant violated: metric %s registered as both %s and gauge", name, f.typ))
	}
	f.series[key] = gaugeFunc(fn)
}

// Histogram returns the fixed-bucket histogram named name with the given
// labels, creating it on first use. buckets are the inclusive upper bounds
// of the finite buckets, in strictly increasing order; a final +Inf bucket
// is implicit. All series of one family must use equal buckets (first
// registration wins; the bucket layout is part of the family's identity).
// It panics when name already names a metric of a different type or when
// buckets are not strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: internal invariant violated: histogram %s buckets not strictly increasing at index %d", name, i))
		}
	}
	m := r.lookup(name, "histogram", help, labels, func() metric {
		upper := make([]float64, len(buckets))
		copy(upper, buckets)
		return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(buckets)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: internal invariant violated: histogram series holds a different type")
	}
	return h
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//snoop:hotpath one atomic add per solver event
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//snoop:hotpath one atomic add per solver event
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) expose(b *strings.Builder, fullName, labels string) {
	b.WriteString(fullName)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

func (c *Counter) snapshot() any { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is usable and
// reads 0.
type Gauge struct {
	bits atomic.Uint64 // IEEE-754 bits of the current value
}

// Set replaces the gauge's value.
//
//snoop:hotpath one atomic store per solver event
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds d (negative d subtracts).
//
//snoop:hotpath CAS loop over the float bits, no allocation
func (g *Gauge) Add(d float64) {
	// CAS loop over the float bits; trips are bounded by write contention
	// on this one gauge, not by any data size or iteration budget.
	//lint:allow ctxloop CAS retry loop, bounded by contention on a single word
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFromBits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
//
//snoop:hotpath delegates to Add
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//snoop:hotpath delegates to Add
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

func (g *Gauge) expose(b *strings.Builder, fullName, labels string) {
	b.WriteString(fullName)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

func (g *Gauge) snapshot() any { return g.Value() }

// gaugeFunc is a gauge computed at exposition time.
type gaugeFunc func() float64

func (f gaugeFunc) expose(b *strings.Builder, fullName, labels string) {
	b.WriteString(fullName)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

func (f gaugeFunc) snapshot() any { return f() }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	upper []float64 // inclusive upper bounds of the finite buckets
	// counts[i] counts observations in bucket i (counts[len(upper)] is the
	// overflow/+Inf bucket). Exposition renders the Prometheus cumulative
	// form; storage is per-bucket so Observe touches one slot.
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // IEEE-754 bits of the observation sum
}

// Observe records one observation.
//
//snoop:hotpath bucket scan plus two atomics, no allocation
func (h *Histogram) Observe(v float64) {
	// Buckets are few and fixed (≤ ~20); linear scan beats binary search
	// at this size and keeps the hot path branch-predictable.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	// CAS loop over the sum bits; trips are bounded by write contention.
	//lint:allow ctxloop CAS retry loop, bounded by contention on a single word
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(floatFromBits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return floatFromBits(h.sumBits.Load()) }

func (h *Histogram) expose(b *strings.Builder, fullName, labels string) {
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		writeBucket(b, fullName, labels, formatFloat(up), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	writeBucket(b, fullName, labels, "+Inf", cum)
	b.WriteString(fullName)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(fullName)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, fullName, labels, le string, cum uint64) {
	b.WriteString(fullName)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="` + le + `"}`)
	} else {
		// splice le into the existing label set
		b.WriteString(labels[:len(labels)-1] + `,le="` + le + `"}`)
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

func (h *Histogram) snapshot() any {
	buckets := map[string]uint64{}
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		buckets[formatFloat(up)] = cum
	}
	cum += h.counts[len(h.upper)].Load()
	buckets["+Inf"] = cum
	return map[string]any{"count": cum, "sum": h.Sum(), "buckets": buckets}
}

// WritePrometheus writes every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// rendering, a # HELP and # TYPE line per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		// Series creation is rare (init- or first-use-time); take the lock
		// briefly per family for a consistent view of its series map.
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		r.mu.Unlock()
		for i, k := range keys {
			series[i].expose(&b, f.name, k)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Expvar returns an expvar.Func rendering a point-in-time snapshot of
// every series as a JSON object keyed by "name" or `name{labels}`.
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		out := map[string]any{}
		r.mu.Lock()
		defer r.mu.Unlock()
		for name, f := range r.families {
			for k, m := range f.series {
				out[name+k] = m.snapshot()
			}
		}
		return out
	}
}

// PublishExpvar publishes the registry's snapshot under the given expvar
// name (visible at /debug/vars). Publishing the same name again is a
// no-op, so repeated setup (tests, multiple servers) is safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.Expvar())
}

// ExpBuckets returns n bucket upper bounds growing geometrically from
// start by factor — the standard layout for latency and iteration-count
// histograms. It panics when start or factor make the sequence
// non-increasing.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: internal invariant violated: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// renderLabels renders a label set canonically: sorted by name,
// `{a="x",b="y"}`, values escaped; "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
