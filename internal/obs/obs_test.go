package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("events_total", "events", L("kind", "a")); again != c {
		t.Fatalf("re-registering the same series returned a new instance")
	}
	other := r.Counter("events_total", "events", L("kind", "b"))
	if other == c {
		t.Fatalf("distinct label sets share a series")
	}
	if other.Value() != 0 {
		t.Fatalf("fresh series not zero")
	}

	g := r.Gauge("level", "a level")
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got < 2.99 || got > 3.01 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got < 105.99 || got > 106.01 {
		t.Fatalf("sum = %v, want 106", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`, // 0.5 and the inclusive 1
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMixedTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering m as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("m", "m")
}

// TestGoldenExposition pins the full exposition format: HELP/TYPE lines,
// family sorting, series sorting, label escaping, histogram rendering.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family", L("q", `va"l`)).Add(7)
	r.Gauge("aa_level", "first family").Set(1.25)
	r.GaugeFunc("mm_func", "computed gauge", func() float64 { return 42 })
	h := r.Histogram("hh_seconds", "a histogram", []float64{0.1, 1}, L("op", "solve"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	const want = `# HELP aa_level first family
# TYPE aa_level gauge
aa_level 1.25
# HELP hh_seconds a histogram
# TYPE hh_seconds histogram
hh_seconds_bucket{op="solve",le="0.1"} 1
hh_seconds_bucket{op="solve",le="1"} 2
hh_seconds_bucket{op="solve",le="+Inf"} 3
hh_seconds_sum{op="solve"} 2.55
hh_seconds_count{op="solve"} 3
# HELP mm_func computed gauge
# TYPE mm_func gauge
mm_func 42
# HELP zz_total last family
# TYPE zz_total counter
zz_total{q="va\"l"} 7
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(3)
	r.Gauge("g", "g", L("x", "y")).Set(1.5)
	r.Histogram("h", "h", []float64{1}).Observe(0.5)
	snap, ok := r.Expvar()().(map[string]any)
	if !ok {
		t.Fatalf("expvar snapshot is not a map")
	}
	if got := snap["c_total"]; got != uint64(3) {
		t.Fatalf("c_total = %v (%T), want 3", got, got)
	}
	if got := snap[`g{x="y"}`]; got != 1.5 {
		t.Fatalf("g = %v, want 1.5", got)
	}
	hm, ok := snap["h"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Fatalf("h snapshot = %v", snap["h"])
	}
	// Publishing twice under one name must not panic.
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestRegistryStorm hammers one registry from many goroutines — creation,
// updates, and exposition concurrently — and checks the final counts. Run
// under -race this is the memory-safety storm the CI race job repeats.
func TestRegistryStorm(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Re-look-up each time: creation path under contention.
				r.Counter("storm_total", "storm", L("mod", string(rune('a'+g%4)))).Inc()
				r.Gauge("storm_gauge", "storm").Add(1)
				r.Histogram("storm_hist", "storm", []float64{10, 100, 1000}).Observe(float64(i))
				if i%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, mod := range []string{"a", "b", "c", "d"} {
		total += r.Counter("storm_total", "storm", L("mod", mod)).Value()
	}
	if want := uint64(goroutines * perG); total != want {
		t.Fatalf("storm counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("storm_gauge", "storm").Value(); got < float64(goroutines*perG)-0.5 || got > float64(goroutines*perG)+0.5 {
		t.Fatalf("storm gauge = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("storm_hist", "storm", []float64{10, 100, 1000}).Count(); got != uint64(goroutines*perG) {
		t.Fatalf("storm histogram count = %d, want %d", got, goroutines*perG)
	}
}
