package tables

import (
	"strings"
	"testing"
)

// FuzzCSVEscape checks that csvEscape output, when embedded in a CSV row,
// never breaks the row structure (quotes are balanced, no bare newlines
// outside quotes).
func FuzzCSVEscape(f *testing.F) {
	f.Add("plain")
	f.Add(`with "quotes"`)
	f.Add("comma, separated")
	f.Add("line\nbreak")
	f.Fuzz(func(t *testing.T, s string) {
		esc := csvEscape(s)
		// Unquoted outputs must contain no specials.
		if !strings.HasPrefix(esc, `"`) {
			if strings.ContainsAny(esc, ",\"\n") {
				t.Fatalf("unquoted escape with specials: %q", esc)
			}
			if esc != s {
				t.Fatalf("unquoted escape altered content: %q -> %q", s, esc)
			}
			return
		}
		// Quoted outputs: strip the outer quotes, un-double inner ones,
		// and require the original back.
		body := esc[1 : len(esc)-1]
		if strings.ReplaceAll(body, `""`, `"`) != s {
			t.Fatalf("quoted escape not invertible: %q -> %q", s, esc)
		}
	})
}
