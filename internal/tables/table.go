// Package tables renders experiment output: aligned ASCII tables (the form
// the paper's Table 4.1 takes), Markdown and CSV for downstream tooling,
// and ASCII line plots for the figures.
package tables

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular grid of cells with column headers and a title.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v. Rows shorter than the
// header are padded, longer ones are truncated.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = formatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		return trimFloat(fmt.Sprintf("%.4f", x))
	case float32:
		return trimFloat(fmt.Sprintf("%.4f", x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func trimFloat(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col); empty string out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.Columns) {
		return ""
	}
	return t.rows[row][col]
}

// WriteASCII renders an aligned plain-text table.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders RFC-4180-style CSV (quoting cells containing commas,
// quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
