package tables

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled curve of a plot.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	Marker byte // rendering glyph; 0 picks automatically
}

// Plot is a terminal line plot, used to regenerate the paper's figures in
// ASCII alongside the CSV series.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns; 0 means 64
	Height int // plot-area rows; 0 means 20
	series []Series
}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Add appends a series. X and Y must have equal non-zero length.
func (p *Plot) Add(s Series) error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("tables: series %q has mismatched lengths %d/%d", s.Label, len(s.X), len(s.Y))
	}
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
			return fmt.Errorf("tables: series %q has non-finite point at %d", s.Label, i)
		}
	}
	if s.Marker == 0 {
		s.Marker = defaultMarkers[len(p.series)%len(defaultMarkers)]
	}
	p.series = append(p.series, s)
	return nil
}

// WriteASCII renders the plot with axes, tick labels and a legend.
func (p *Plot) WriteASCII(w io.Writer) error {
	if len(p.series) == 0 {
		return errors.New("tables: plot has no series")
	}
	width, height := p.Width, p.Height
	if width == 0 {
		width = 64
	}
	if height == 0 {
		height = 20
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range p.series {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				ymin, ymax = s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	// Degenerate (empty or single-valued) ranges get unit width so the
	// projection below never divides by zero.
	if !(xmin < xmax) {
		xmax = xmin + 1
	}
	if !(ymin < ymax) {
		ymax = ymin + 1
	}
	// Grow the y-range slightly so extremes are not clipped onto the axis.
	ymax += (ymax - ymin) * 0.05

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plotPoint := func(x, y float64, m byte) {
		cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		cy := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = m
		}
	}
	for _, s := range p.series {
		// Connect consecutive points with interpolated markers, then
		// overdraw the data points themselves.
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		for k := 0; k+1 < len(idx); k++ {
			x0, y0 := s.X[idx[k]], s.Y[idx[k]]
			x1, y1 := s.X[idx[k+1]], s.Y[idx[k+1]]
			steps := int(math.Abs((x1-x0)/(xmax-xmin))*float64(width)) + 1
			for st := 0; st <= steps; st++ {
				f := float64(st) / float64(steps)
				plotPoint(x0+(x1-x0)*f, y0+(y1-y0)*f, '.')
			}
		}
		for i := range s.X {
			plotPoint(s.X[i], s.Y[i], s.Marker)
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	lw := len(yTop)
	if len(yBot) > lw {
		lw = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", lw)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", lw, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", lw, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", lw), strings.Repeat("-", width))
	xLeft := fmt.Sprintf("%.3g", xmin)
	xRight := fmt.Sprintf("%.3g", xmax)
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", lw), xLeft, strings.Repeat(" ", gap), xRight)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", lw), p.XLabel, p.YLabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", s.Marker, s.Label)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV emits the plot's series as a long-format table (series, x, y).
func (p *Plot) CSV() *Table {
	t := New(p.Title, "series", p.XLabel, p.YLabel)
	for _, s := range p.series {
		for i := range s.X {
			t.AddRow(s.Label, s.X[i], s.Y[i])
		}
	}
	return t
}
