package tables

import (
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tb := New("Speedups", "N", "MVA", "GTPN")
	tb.AddRow(1, 0.86, 0.86)
	tb.AddRow(100, 6.07, "")
	var sb strings.Builder
	if err := tb.WriteASCII(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Speedups", "N", "MVA", "GTPN", "0.86", "6.07", "100", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := New("", "col", "value")
	tb.AddRow("longlonglong", 1)
	var sb strings.Builder
	if err := tb.WriteASCII(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// Header and data rows must align: "value" column starts at the same
	// offset in both.
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "1") {
		t.Errorf("columns not aligned:\n%s", sb.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := New("My Title", "a", "b")
	tb.AddRow("x", 2.5)
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "### My Title") ||
		!strings.Contains(out, "| a | b |") ||
		!strings.Contains(out, "|---|---|") ||
		!strings.Contains(out, "| x | 2.5 |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("", "name", "note")
	tb.AddRow(`say "hi"`, "a,b")
	tb.AddRow("plain", "line\nbreak")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"say ""hi""","a,b"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.Contains(out, "\"line\nbreak\"") {
		t.Errorf("newline quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,note\n") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestTableCellAccessors(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow(1) // short row padded
	tb.AddRow(1, 2, 3)
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 1) != "" {
		t.Errorf("padded cell = %q", tb.Cell(0, 1))
	}
	if tb.Cell(1, 1) != "2" {
		t.Errorf("cell = %q", tb.Cell(1, 1))
	}
	if tb.Cell(5, 0) != "" || tb.Cell(0, 9) != "" {
		t.Error("out-of-range cells should be empty")
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.8649: "0.8649",
		3.25:   "3.25",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPlotBasic(t *testing.T) {
	p := NewPlot("Figure 4.1", "processors", "speedup")
	if err := p.Add(Series{Label: "WO 5%", X: []float64{1, 10, 20}, Y: []float64{0.85, 5.2, 5.6}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Label: "WO+1 5%", X: []float64{1, 10, 20}, Y: []float64{0.87, 6.2, 6.6}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.WriteASCII(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 4.1", "WO 5%", "WO+1 5%", "x: processors, y: speedup", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotErrors(t *testing.T) {
	p := NewPlot("", "", "")
	var sb strings.Builder
	if err := p.WriteASCII(&sb); err == nil {
		t.Error("empty plot should error")
	}
	if err := p.Add(Series{Label: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched series accepted")
	}
	if err := p.Add(Series{Label: "nan", X: []float64{1}, Y: []float64{strNaN()}}); err == nil {
		t.Error("NaN series accepted")
	}
}

func strNaN() float64 {
	var zero float64
	return zero / zero
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	if err := p.Add(Series{Label: "c", X: []float64{1, 2}, Y: []float64{3, 3}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.WriteASCII(&sb); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
}

func TestPlotCSV(t *testing.T) {
	p := NewPlot("fig", "n", "s")
	if err := p.Add(Series{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	tb := p.CSV()
	if tb.Rows() != 2 || tb.Cell(0, 0) != "a" || tb.Cell(1, 2) != "4" {
		t.Errorf("CSV table wrong: %+v", tb)
	}
}

func TestPlotMarkersAssigned(t *testing.T) {
	p := NewPlot("", "", "")
	for i := 0; i < 10; i++ {
		if err := p.Add(Series{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range p.series {
		if s.Marker == 0 {
			t.Errorf("series %d has no marker", i)
		}
	}
}
