package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("parent and child streams collided %d times", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(5) bucket %d count %d, want ~10000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(4)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exponential(2.5)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exponential mean = %v, want ~2.5", mean)
	}
	if r.Exponential(0) != 0 || r.Exponential(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Geometric(0.4)
		if v < 1 {
			t.Fatalf("geometric below 1: %d", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Geometric(0.4) mean = %v, want ~2.5", mean)
	}
	if r.Geometric(1) != 1 {
		t.Error("Geometric(1) must be 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) should panic")
		}
	}()
	r.Geometric(0)
}

func TestChoose(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[r.Choose(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("Choose with no positive weights should panic")
		}
	}()
	r.Choose([]float64{0, -1})
}

// Property: Choose always returns a positive-weight index.
func TestChooseValidIndexQuick(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, w := range raw {
			weights[i] = float64(w)
			total += float64(w)
		}
		if total == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			idx := r.Choose(weights)
			if idx < 0 || idx >= len(weights) || weights[idx] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCalendarOrdering(t *testing.T) {
	c := NewCalendar()
	var order []int
	mustSchedule(t, c, 5, func() { order = append(order, 3) })
	mustSchedule(t, c, 1, func() { order = append(order, 1) })
	mustSchedule(t, c, 3, func() { order = append(order, 2) })
	for c.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if c.Now() != 5 {
		t.Errorf("Now = %v, want 5", c.Now())
	}
}

func TestCalendarFIFOTies(t *testing.T) {
	c := NewCalendar()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, c, 2, func() { order = append(order, i) })
	}
	for c.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order not FIFO: %v", order)
		}
	}
}

func TestCalendarNestedScheduling(t *testing.T) {
	c := NewCalendar()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 5 {
			mustSchedule(t, c, 1, rec)
		}
	}
	mustSchedule(t, c, 0, rec)
	c.RunUntil(100)
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	if c.Now() != 100 {
		t.Errorf("RunUntil should advance to limit, Now = %v", c.Now())
	}
}

func TestCalendarRunUntilStopsAtLimit(t *testing.T) {
	c := NewCalendar()
	ran := false
	mustSchedule(t, c, 10, func() { ran = true })
	c.RunUntil(5)
	if ran {
		t.Error("event after limit should not run")
	}
	if c.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", c.Pending())
	}
	c.RunUntil(15)
	if !ran {
		t.Error("event should run when limit passes it")
	}
}

func TestCalendarCancel(t *testing.T) {
	c := NewCalendar()
	ran := false
	e, err := c.Schedule(1, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	c.Cancel(e)
	c.RunUntil(10)
	if ran {
		t.Error("cancelled event ran")
	}
	c.Cancel(e) // double cancel is a no-op
	c.Cancel(nil)
}

func TestCalendarScheduleErrors(t *testing.T) {
	c := NewCalendar()
	if _, err := c.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := c.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
	if _, err := c.Schedule(1, nil); err == nil {
		t.Error("nil action accepted")
	}
}

func TestCalendarRunBudget(t *testing.T) {
	c := NewCalendar()
	count := 0
	var loop func()
	loop = func() {
		count++
		mustSchedule(t, c, 1, loop)
	}
	mustSchedule(t, c, 1, loop)
	n := c.Run(7)
	if n != 7 || count != 7 {
		t.Errorf("Run executed %d events, count %d; want 7", n, count)
	}
}

func mustSchedule(t *testing.T, c *Calendar, d float64, f func()) {
	t.Helper()
	if _, err := c.Schedule(d, f); err != nil {
		t.Fatal(err)
	}
}
