// Package sim provides the discrete-event simulation substrate used by the
// detailed multiprocessor simulator (internal/cachesim): deterministic
// splittable pseudo-random streams and a time-ordered event calendar.
//
// Reproducibility is a design requirement — every simulator run is fully
// determined by its seed, so experiments and tests can pin exact outputs.
package sim

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is small, fast, passes
// BigCrush, and — unlike math/rand's global state — can be split into
// independent streams for per-processor reproducibility.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new independent stream derived from this one.
func (r *RNG) Split() *RNG {
	// Advance the parent and use the output as the child's seed, xored
	// with a distinct constant so parent and child sequences differ.
	return &RNG{state: r.Uint64() ^ 0xa5a5a5a5deadbeef}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). A non-positive bound panics:
// every caller passes a pool or module count that cachesim's Config
// validation has already constrained to be >= 1, so this guards an internal
// invariant, not caller input.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: internal invariant violated: Intn bound must be positive (pool/module counts are validated by cachesim.Config)")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometric variate counting the number of trials up to
// and including the first success, with success probability p in (0,1].
// The mean is 1/p. A probability outside (0,1] panics: the only production
// caller draws think times with p = 1/τ after cachesim.New has rejected
// τ < 1, so this guards an internal invariant, not caller input.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("sim: internal invariant violated: Geometric success probability outside (0,1] (τ >= 1 is enforced by cachesim.New)")
	}
	if p >= 1 { // p > 1 already panicked, so this is exactly p = 1
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Choose returns an index in [0, len(weights)) with probability
// proportional to the weights; negative weights are treated as zero.
// An all-zero or empty weight slice panics: the stream probabilities that
// reach it are validated by workload.Params.Validate (they must sum to 1),
// so this guards an internal invariant, not caller input.
func (r *RNG) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("sim: internal invariant violated: Choose needs a positive weight (stream probabilities are validated by workload.Params)")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point tail: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("sim: unreachable")
}
