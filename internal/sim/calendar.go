package sim

import (
	"container/heap"
	"errors"
	"math"
)

// Event is a scheduled callback.
type Event struct {
	Time   float64
	Action func()
	seq    uint64
	index  int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time < h[j].Time {
		return true
	}
	if h[i].Time > h[j].Time {
		return false
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	e.index = -1
	return e
}

// Calendar is a discrete-event engine: schedule callbacks at future times
// and run them in time order (FIFO among ties).
type Calendar struct {
	now  float64
	heap eventHeap
	seq  uint64
}

// NewCalendar returns an empty calendar at time 0.
func NewCalendar() *Calendar { return &Calendar{} }

// Now returns the current simulation time.
func (c *Calendar) Now() float64 { return c.now }

// Pending returns the number of scheduled events.
func (c *Calendar) Pending() int { return len(c.heap) }

// Schedule enqueues action to run delay time units from now. Negative or
// NaN delays are rejected.
func (c *Calendar) Schedule(delay float64, action func()) (*Event, error) {
	if math.IsNaN(delay) || delay < 0 {
		return nil, errors.New("sim: negative or NaN delay")
	}
	if action == nil {
		return nil, errors.New("sim: nil action")
	}
	e := &Event{Time: c.now + delay, Action: action, seq: c.seq}
	c.seq++
	heap.Push(&c.heap, e)
	return e, nil
}

// Cancel removes a scheduled event; it is a no-op if the event already ran
// or was cancelled.
func (c *Calendar) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(c.heap) || c.heap[e.index] != e {
		return
	}
	heap.Remove(&c.heap, e.index)
}

// Step runs the next event; returns false if the calendar is empty.
func (c *Calendar) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := heap.Pop(&c.heap).(*Event)
	c.now = e.Time
	e.Action()
	return true
}

// RunUntil executes events in order until the calendar is empty or the
// next event is after limit. Time ends at min(limit, last event time).
func (c *Calendar) RunUntil(limit float64) {
	for len(c.heap) > 0 && c.heap[0].Time <= limit {
		c.Step()
	}
	if c.now < limit {
		c.now = limit
	}
}

// Run executes events until the calendar empties or maxEvents have run;
// returns the number of events executed.
func (c *Calendar) Run(maxEvents int) int {
	n := 0
	for n < maxEvents && c.Step() {
		n++
	}
	return n
}
