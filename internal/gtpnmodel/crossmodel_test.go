package gtpnmodel

import (
	"math"
	"testing"
	"testing/quick"

	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

// Property: for RANDOM workloads — not just the Appendix A points — the
// bus-only MVA agrees with the exact GTPN solution at small N. This is the
// paper's robustness claim (Section 4.3) turned into a property test: the
// mean-value equations hold up across the parameter space, not only at the
// calibrated values.
func TestMVAvsGTPNRandomWorkloadsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-model property test is slow")
	}
	f := func(h1000, sw300, hsw1000, rep100, cs100 uint16, nRaw uint8) bool {
		p := workload.AppendixA(workload.Sharing5)
		// Private/sro hit rates down to 0.7: beyond that the machine is
		// saturated even at N=2-3 and the mean-value approximations are
		// known to drift past the paper's own stress envelope (its §4.3
		// test has an overall miss ratio around 0.2).
		p.HPrivate = 0.7 + float64(h1000%300)/1000 // [0.7, 1)
		p.HSro = p.HPrivate
		sw := float64(sw300%300) / 1000 // [0, 0.3)
		p.PSw = sw
		p.PPrivate = 1 - p.PSro - sw
		p.HSw = float64(hsw1000%1001) / 1000
		p.RepP = float64(rep100%101) / 100
		p.RepSw = p.RepP
		p.CsupplySw = float64(cs100%101) / 100
		if p.Validate() != nil {
			return true
		}
		// Stay within the paper's validated stress envelope: its §4.3
		// test drives roughly a 20% miss ratio. Past ~25% the machine is
		// deeply saturated even at N=2-3 and the mean-value equations'
		// accuracy visibly degrades (an honest boundary of the technique,
		// also visible in our EXPERIMENTS.md notes).
		if p.Classes().Misses() > 0.25 {
			return true
		}
		n := 2 + int(nRaw%2) // N in {2,3}: cheap exact solutions
		g, err := Solve(Config{Workload: p, RawParams: true, N: n},
			petri.Options{MaxStates: 100000})
		if err != nil {
			t.Logf("gtpn error (skipping): %v", err)
			return true
		}
		m, err := (mva.Model{Workload: p, RawParams: true}).Solve(n, mva.Options{
			NoCacheInterference:  true,
			NoMemoryInterference: true,
		})
		if err != nil {
			return false
		}
		rel := math.Abs(m.Speedup-g.Speedup) / g.Speedup
		if rel > 0.08 {
			t.Logf("divergence %.1f%% at N=%d: MVA %.4f vs GTPN %.4f (params %+v)",
				rel*100, n, m.Speedup, g.Speedup, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: protocol modifications never make the GTPN model slower than
// base Write-Once at the Appendix A workloads (mirrors the MVA ordering
// tests at the detailed-model level).
func TestGTPNModsNeverHurt(t *testing.T) {
	for _, s := range workload.Sharings() {
		base, err := Solve(Config{Workload: workload.AppendixA(s), N: 3}, petri.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ms := range []protocol.ModSet{
			protocol.Mods(protocol.Mod1),
			protocol.Mods(protocol.Mod1, protocol.Mod4),
			protocol.Mods(protocol.Mod1, protocol.Mod2, protocol.Mod3),
		} {
			v, err := Solve(Config{Workload: workload.AppendixA(s), Mods: ms, N: 3}, petri.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Speedup < base.Speedup*0.995 {
				t.Errorf("%v at %v: %.4f below WO %.4f", ms, s, v.Speedup, base.Speedup)
			}
		}
	}
}
