package gtpnmodel

import (
	"math"
	"testing"

	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

func TestSingleProcessorMatchesMVAExactly(t *testing.T) {
	// With one processor there is no contention in either model; both
	// reduce to τ + T_supply + mean access time. The GTPN rounds the
	// remote-read case durations to integers, so allow that quantization.
	for _, s := range workload.Sharings() {
		g, err := Solve(Config{Workload: workload.AppendixA(s), N: 1}, petri.Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		m, err := (mva.Model{Workload: workload.AppendixA(s)}).Solve(1, mva.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(g.Speedup-m.Speedup) / m.Speedup
		if rel > 0.01 {
			t.Errorf("%v: GTPN %v vs MVA %v (rel %.2f%%)", s, g.Speedup, m.Speedup, rel*100)
		}
		if g.States == 0 || g.R <= 0 {
			t.Errorf("%v: degenerate result %+v", s, g)
		}
	}
}

// The paper's headline validation: MVA speedups agree with the detailed
// model's within a few percent. Our GTPN omits the second-order memory and
// cache interference submodels, so the apples-to-apples comparison ablates
// them from the MVA; agreement tightens to ~3% through N=6.
func TestMVAAgreesWithGTPN(t *testing.T) {
	for _, s := range workload.Sharings() {
		for _, n := range []int{2, 4, 6} {
			g, err := Solve(Config{Workload: workload.AppendixA(s), N: n}, petri.Options{})
			if err != nil {
				t.Fatalf("%v N=%d: %v", s, n, err)
			}
			busOnly, err := (mva.Model{Workload: workload.AppendixA(s)}).Solve(n, mva.Options{
				NoCacheInterference:  true,
				NoMemoryInterference: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(busOnly.Speedup-g.Speedup) / g.Speedup
			if rel > 0.035 {
				t.Errorf("%v N=%d: bus-only MVA %.3f vs GTPN %.3f (rel %.1f%%)",
					s, n, busOnly.Speedup, g.Speedup, rel*100)
			}
			// The full MVA (with its extra interference terms) stays
			// within a slightly wider band and always below the GTPN, the
			// direction the paper reports.
			full, err := (mva.Model{Workload: workload.AppendixA(s)}).Solve(n, mva.Options{})
			if err != nil {
				t.Fatal(err)
			}
			relFull := math.Abs(full.Speedup-g.Speedup) / g.Speedup
			if relFull > 0.06 {
				t.Errorf("%v N=%d: full MVA %.3f vs GTPN %.3f (rel %.1f%%)",
					s, n, full.Speedup, g.Speedup, relFull*100)
			}
			if full.Speedup > g.Speedup+1e-9 {
				t.Errorf("%v N=%d: full MVA %.3f above GTPN %.3f — expected underestimate",
					s, n, full.Speedup, g.Speedup)
			}
			// Bus utilizations agree closely too (Section 4.2 reports
			// "typically less than 5% relative error").
			if g.UBus > 0 {
				if uRel := math.Abs(busOnly.UBus-g.UBus) / g.UBus; uRel > 0.05 {
					t.Errorf("%v N=%d: U_bus MVA %.3f vs GTPN %.3f (rel %.1f%%)",
						s, n, busOnly.UBus, g.UBus, uRel*100)
				}
			}
		}
	}
}

func TestGTPNProtocolOrdering(t *testing.T) {
	// The GTPN model must reproduce the protocol ranking at N=4.
	s := workload.Sharing5
	wo, err := Solve(Config{Workload: workload.AppendixA(s), N: 4}, petri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Solve(Config{Workload: workload.AppendixA(s), Mods: protocol.Mods(protocol.Mod1), N: 4}, petri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m14, err := Solve(Config{Workload: workload.AppendixA(s), Mods: protocol.Mods(protocol.Mod1, protocol.Mod4), N: 4}, petri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(wo.Speedup < m1.Speedup && m1.Speedup < m14.Speedup) {
		t.Errorf("ordering broken: WO=%.3f, WO+1=%.3f, WO+1+4=%.3f",
			wo.Speedup, m1.Speedup, m14.Speedup)
	}
}

func TestGTPNMod1AgreesWithMVA(t *testing.T) {
	cfg := Config{Workload: workload.AppendixA(workload.Sharing5), Mods: protocol.Mods(protocol.Mod1), N: 4}
	g, err := Solve(cfg, petri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := (mva.Model{Workload: workload.AppendixA(workload.Sharing5), Mods: protocol.Mods(protocol.Mod1)}).
		Solve(4, mva.Options{NoCacheInterference: true, NoMemoryInterference: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Speedup-g.Speedup) / g.Speedup; rel > 0.04 {
		t.Errorf("mod1: MVA %.3f vs GTPN %.3f (rel %.1f%%)", m.Speedup, g.Speedup, rel*100)
	}
}

// The per-processor variant's reachability graph grows exponentially while
// the lumped variant grows polynomially — the computational contrast at the
// heart of Section 3.2.
func TestStateSpaceGrowth(t *testing.T) {
	lumped := make([]int, 0, 3)
	exploded := make([]int, 0, 3)
	for _, n := range []int{1, 2, 3} {
		cfg := Config{Workload: workload.AppendixA(workload.Sharing5), N: n}
		l, err := StateCount(cfg, false, petri.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := StateCount(cfg, true, petri.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lumped = append(lumped, l)
		exploded = append(exploded, e)
	}
	// Exploded growth factor must exceed the lumped one and be large.
	gE := float64(exploded[2]) / float64(exploded[1])
	gL := float64(lumped[2]) / float64(lumped[1])
	if gE < 2*gL {
		t.Errorf("per-processor growth %.1fx not clearly exponential vs lumped %.1fx (states %v vs %v)",
			gE, gL, exploded, lumped)
	}
	if exploded[2] <= lumped[2] {
		t.Errorf("per-processor space (%d) should exceed lumped (%d)", exploded[2], lumped[2])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Build(Config{Workload: workload.AppendixA(workload.Sharing5), N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	fast := workload.AppendixA(workload.Sharing5)
	fast.Tau = 0.5
	if _, _, err := Build(Config{Workload: fast, N: 2, RawParams: true}); err == nil {
		t.Error("τ<1 accepted")
	}
	bad := workload.AppendixA(workload.Sharing5)
	bad.HSw = 2
	if _, _, err := Build(Config{Workload: bad, N: 2}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, _, err := BuildPerProcessor(Config{Workload: workload.AppendixA(workload.Sharing5), N: 0}); err == nil {
		t.Error("per-processor N=0 accepted")
	}
	if _, _, err := BuildPerProcessor(Config{Workload: fast, N: 2, RawParams: true}); err == nil {
		t.Error("per-processor τ<1 accepted")
	}
	if _, err := StateCount(Config{Workload: bad, N: 2}, false, petri.Options{}); err == nil {
		t.Error("StateCount should propagate build errors")
	}
	if _, err := StateCount(Config{Workload: bad, N: 2}, true, petri.Options{}); err == nil {
		t.Error("StateCount (per-processor) should propagate build errors")
	}
	if _, err := Solve(Config{Workload: bad, N: 2}, petri.Options{}); err == nil {
		t.Error("Solve should propagate build errors")
	}
}

func TestSolveRespectsMaxStates(t *testing.T) {
	cfg := Config{Workload: workload.AppendixA(workload.Sharing5), N: 6}
	if _, err := Solve(cfg, petri.Options{MaxStates: 10}); err == nil {
		t.Error("expected state-space error")
	}
}

func TestRRCasesPartition(t *testing.T) {
	d, err := workload.Derive(workload.AppendixA(workload.Sharing20), workload.DefaultTiming(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := rrCases(d)
	var sum, mean float64
	for _, c := range cases {
		if c.prob < 0 || c.duration < 1 {
			t.Errorf("bad case %+v", c)
		}
		sum += c.prob
		mean += c.prob * float64(c.duration)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("case probabilities sum to %v", sum)
	}
	// The integer-duration mixture must reproduce the continuous t_read
	// up to rounding.
	if math.Abs(mean-d.TRead) > 0.5 {
		t.Errorf("case mixture mean %v vs t_read %v", mean, d.TRead)
	}
}

func TestResultString(t *testing.T) {
	g, err := Solve(Config{Workload: workload.AppendixA(workload.Sharing1), N: 2}, petri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.String() == "" {
		t.Error("empty String()")
	}
}

// ModelMemory adds module contention with posted-write (non-blocking)
// semantics; the full MVA (minus only cache interference) must track it.
func TestMemoryModeledNetAgreesWithMVA(t *testing.T) {
	for _, s := range workload.Sharings() {
		for _, n := range []int{2, 4, 6} {
			g, err := Solve(Config{Workload: workload.AppendixA(s), N: n, ModelMemory: true},
				petri.Options{MaxStates: 500000})
			if err != nil {
				t.Fatalf("%v N=%d: %v", s, n, err)
			}
			m, err := (mva.Model{Workload: workload.AppendixA(s)}).Solve(n, mva.Options{
				NoCacheInterference: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(m.Speedup-g.Speedup) / g.Speedup; rel > 0.06 {
				t.Errorf("%v N=%d: MVA(mem) %.4f vs GTPN+mem %.4f (rel %.1f%%)",
					s, n, m.Speedup, g.Speedup, rel*100)
			}
		}
	}
}

// The memory-modeled net must be a refinement, not a rewrite: its speedups
// stay within a few percent of the memoryless net (memory waits are a
// second-order effect at the paper's d_mem = 3).
func TestMemoryModelingIsSecondOrder(t *testing.T) {
	for _, n := range []int{2, 4} {
		base, err := Solve(Config{Workload: workload.AppendixA(workload.Sharing5), N: n}, petri.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mem, err := Solve(Config{Workload: workload.AppendixA(workload.Sharing5), N: n, ModelMemory: true},
			petri.Options{MaxStates: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mem.Speedup-base.Speedup) / base.Speedup; rel > 0.04 {
			t.Errorf("N=%d: memory modeling moved speedup by %.1f%% (%.4f vs %.4f)",
				n, rel*100, mem.Speedup, base.Speedup)
		}
		if mem.States <= base.States {
			t.Errorf("N=%d: memory net should have more states (%d vs %d)", n, mem.States, base.States)
		}
	}
}
