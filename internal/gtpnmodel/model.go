// Package gtpnmodel builds Generalized Timed Petri Net models of the
// snooping-cache multiprocessor and solves them with the internal/petri
// engine. This is the repository's stand-in for the detailed GTPN model of
// [VeHo86] that the paper validates its MVA against (the original net is
// not published in the paper; DESIGN.md §3 records the substitution).
//
// Two variants are provided:
//
//   - the lumped model exploits processor symmetry (tokens are
//     indistinguishable customers), keeping the state space tractable so
//     the detailed-vs-MVA comparison can run at the paper's system sizes;
//   - the per-processor model gives every processor its own places, which
//     reproduces the exponential state-space growth that made the original
//     GTPN impractical beyond ten or twelve processors (Section 3.2).
//
// Both model the same mechanics: geometrically distributed processor think
// time with mean τ, probabilistic request classification into local /
// broadcast / remote-read traffic, a single shared bus with deterministic,
// case-dependent access times (cache supply vs memory fetch, supplier and
// requester write-backs), and the one-cycle cache supply. Main-memory
// module contention and snoop-induced cache interference are second-order
// effects (bounded by d_mem/2 and the small R_local term) and are not
// modeled in the net; the validation tolerances account for this.
package gtpnmodel

import (
	"context"
	"fmt"
	"math"
	"strings"

	"snoopmva/internal/petri"
	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Config describes one detailed-model configuration.
type Config struct {
	// Workload holds the basic parameters; the Appendix A per-protocol
	// adjustments are applied unless RawParams is set.
	Workload  workload.Params
	Timing    workload.Timing
	Mods      protocol.ModSet
	RawParams bool
	// WriteThroughBase models the degenerate all-write-through protocol.
	WriteThroughBase bool
	// ModelMemory adds main-memory module contention to the net: word
	// writes hold one of BlockSize pooled module tokens for d_mem beyond
	// the bus cycle, and block write-backs briefly hold the whole pool —
	// the counterpart of the MVA's equations (11)-(12). Arbitration is
	// non-blocking: a transaction whose module is busy defers WITHOUT
	// holding the bus (a posted-write memory), which is slightly more
	// permissive than the MVA's equation (3), where the write-word holds
	// the bus through its memory wait. Off by default.
	ModelMemory bool
	// N is the number of processors.
	N int
}

func (c Config) timing() workload.Timing {
	if c.Timing == (workload.Timing{}) {
		return workload.DefaultTiming()
	}
	return c.Timing
}

func (c Config) derive() (workload.Derived, error) {
	if c.WriteThroughBase {
		return workload.DeriveWriteThrough(c.Workload, c.timing())
	}
	p := c.Workload
	if !c.RawParams {
		p = p.ForProtocol(c.Mods)
	}
	return workload.Derive(p, c.timing(), c.Mods)
}

// busCase is one remote-read service case with its deterministic duration.
type busCase struct {
	name     string
	prob     float64
	duration int
}

// rrCases enumerates the remote-read timing cases: {cache-clean,
// cache-dirty, memory} × {no requester write-back, requester write-back}.
func rrCases(d workload.Derived) []busCase {
	t := d.Timing
	pcs, pcsw, prw := d.PCsupplyRR, d.PCsupWbRR, d.PReqWbRR
	base := []busCase{
		{"cache-clean", pcs - pcsw, int(math.Round(t.TReadCacheSupply()))},
		{"cache-dirty", pcsw, int(math.Round(t.TReadCacheSupply() + t.TBlock))},
		{"memory", 1 - pcs, int(math.Round(t.TReadBase()))},
	}
	wb := int(math.Round(t.TBlock))
	var out []busCase
	for _, b := range base {
		if b.prob <= 0 {
			continue
		}
		if prw > 0 {
			out = append(out,
				busCase{b.name, b.prob * (1 - prw), b.duration},
				busCase{b.name + "+reqwb", b.prob * prw, b.duration + wb})
		} else {
			out = append(out, b)
		}
	}
	return out
}

// Handles exposes the measurable elements of a built net.
type Handles struct {
	Think      petri.PlaceID
	BusFree    petri.PlaceID
	Completion []petri.TransID // transitions whose combined throughput is the request rate
	BusServe   []petri.TransID // bus transactions (occupancy = utilization)
}

// Build constructs the lumped (symmetric-customer) net for cfg.
func Build(cfg Config) (*petri.Net, Handles, error) {
	d, err := cfg.derive()
	if err != nil {
		return nil, Handles{}, err
	}
	if cfg.N < 1 {
		return nil, Handles{}, fmt.Errorf("gtpnmodel: N=%d < 1: %w", cfg.N, workload.ErrInvalid)
	}
	tau := d.Params.Tau
	if tau < 1 {
		return nil, Handles{}, fmt.Errorf("gtpnmodel: τ=%v < 1 cycle cannot be modeled by a geometric think loop: %w", tau, workload.ErrInvalid)
	}
	n := petri.NewNet()
	h := Handles{}

	think := n.AddPlace("think", cfg.N)
	classify := n.AddPlace("classify", 0)
	localSvc := n.AddPlace("local-svc", 0)
	qBc := n.AddPlace("bus-queue-bc", 0)
	qRr := n.AddPlace("bus-queue-rr", 0)
	busFree := n.AddPlace("bus-free", 1)
	supply := n.AddPlace("supply", 0)
	h.Think, h.BusFree = think, busFree

	// Optional memory-module pool: word writes take one token for d_mem
	// past the bus cycle; block write-backs take the whole pool.
	var memFree, memHeld petri.PlaceID
	modules := d.Timing.BlockSize
	dMem := int(math.Round(d.Timing.DMem))
	if cfg.ModelMemory {
		memFree = n.AddPlace("mem-free", modules)
		memHeld = n.AddPlace("mem-held", 0)
		memWrite := n.AddTransition("mem-write", maxInt(1, dMem), 1)
		n.AddInput(memWrite, memHeld, 1)
		n.AddOutput(memWrite, memFree, 1)
	}

	// Geometric think loop with mean τ: each cycle ends thinking with
	// probability 1/τ.
	q := 1 / tau
	thinkDone := n.AddTransition("think-done", 1, q)
	n.AddInput(thinkDone, think, 1)
	n.AddOutput(thinkDone, classify, 1)
	if q < 1 {
		thinkMore := n.AddTransition("think-more", 1, 1-q)
		n.AddInput(thinkMore, think, 1)
		n.AddOutput(thinkMore, think, 1)
	}

	// Immediate classification into the three request kinds.
	addClass := func(name string, prob float64, dst petri.PlaceID) {
		if prob <= 0 {
			return
		}
		t := n.AddTransition("classify-"+name, 0, prob)
		n.AddInput(t, classify, 1)
		n.AddOutput(t, dst, 1)
	}
	addClass("local", d.PLocal, localSvc)
	addClass("bc", d.PBc, qBc)
	addClass("rr", d.PRr, qRr)

	// Local accesses: the cache satisfies the processor in one cycle.
	tLocal := n.AddTransition("local-access", 1, 1)
	n.AddInput(tLocal, localSvc, 1)
	n.AddOutput(tLocal, think, 1)
	h.Completion = append(h.Completion, tLocal)

	// Broadcast bus transactions. With memory modeled, a write-word also
	// claims a module token and hands it to the posted mem-write stage;
	// memory-bypassing broadcasts (modification 3) do not touch the pool.
	if d.PBc > 0 {
		dur := int(math.Round(d.TBc(0)))
		if dur < 1 {
			dur = 1
		}
		serveBc := n.AddTransition("serve-bc", dur, d.PBc)
		n.AddInput(serveBc, qBc, 1)
		n.AddInput(serveBc, busFree, 1)
		n.AddOutput(serveBc, busFree, 1)
		n.AddOutput(serveBc, supply, 1)
		if cfg.ModelMemory && d.BroadcastTouchesMemory {
			n.AddInput(serveBc, memFree, 1)
			n.AddOutput(serveBc, memHeld, 1)
		}
		h.BusServe = append(h.BusServe, serveBc)
	}

	// Remote-read bus transactions, one per deterministic timing case.
	// With memory modeled, cases that write a block back (supplier update
	// or replacement) hold the whole module pool for d_mem afterwards,
	// via a dedicated posted-write stage.
	var memBlockHeld petri.PlaceID
	if cfg.ModelMemory {
		memBlockHeld = n.AddPlace("mem-block-held", 0)
		memBlockWrite := n.AddTransition("mem-block-write", maxInt(1, dMem), 1)
		n.AddInput(memBlockWrite, memBlockHeld, 1)
		n.AddOutput(memBlockWrite, memFree, modules)
	}
	if d.PRr > 0 {
		for _, bc := range rrCases(d) {
			if bc.duration < 1 {
				bc.duration = 1
			}
			t := n.AddTransition("serve-rr-"+bc.name, bc.duration, d.PRr*bc.prob)
			n.AddInput(t, qRr, 1)
			n.AddInput(t, busFree, 1)
			n.AddOutput(t, busFree, 1)
			n.AddOutput(t, supply, 1)
			if cfg.ModelMemory && (strings.Contains(bc.name, "wb") || strings.Contains(bc.name, "dirty")) {
				n.AddInput(t, memFree, modules)
				n.AddOutput(t, memBlockHeld, 1)
			}
			h.BusServe = append(h.BusServe, t)
		}
	}

	// Cache supply cycle after any bus transaction.
	tSupply := n.AddTransition("cache-supply", 1, 1)
	n.AddInput(tSupply, supply, 1)
	n.AddOutput(tSupply, think, 1)
	h.Completion = append(h.Completion, tSupply)

	return n, h, nil
}

// BuildPerProcessor constructs the exploded variant with per-processor
// think/classify/service places (the bus remains shared). Its reachability
// graph grows exponentially in N — use StateCount rather than Analyze for
// all but tiny systems.
func BuildPerProcessor(cfg Config) (*petri.Net, Handles, error) {
	d, err := cfg.derive()
	if err != nil {
		return nil, Handles{}, err
	}
	if cfg.N < 1 {
		return nil, Handles{}, fmt.Errorf("gtpnmodel: N=%d < 1: %w", cfg.N, workload.ErrInvalid)
	}
	tau := d.Params.Tau
	if tau < 1 {
		return nil, Handles{}, fmt.Errorf("gtpnmodel: τ=%v < 1 cycle cannot be modeled by a geometric think loop: %w", tau, workload.ErrInvalid)
	}
	n := petri.NewNet()
	h := Handles{}
	busFree := n.AddPlace("bus-free", 1)
	h.BusFree = busFree
	q := 1 / tau

	for i := 0; i < cfg.N; i++ {
		pfx := fmt.Sprintf("p%d-", i)
		think := n.AddPlace(pfx+"think", 1)
		classify := n.AddPlace(pfx+"classify", 0)
		localSvc := n.AddPlace(pfx+"local-svc", 0)
		qBc := n.AddPlace(pfx+"bus-queue-bc", 0)
		qRr := n.AddPlace(pfx+"bus-queue-rr", 0)
		supply := n.AddPlace(pfx+"supply", 0)
		if i == 0 {
			h.Think = think
		}

		thinkDone := n.AddTransition(pfx+"think-done", 1, q)
		n.AddInput(thinkDone, think, 1)
		n.AddOutput(thinkDone, classify, 1)
		if q < 1 {
			thinkMore := n.AddTransition(pfx+"think-more", 1, 1-q)
			n.AddInput(thinkMore, think, 1)
			n.AddOutput(thinkMore, think, 1)
		}
		addClass := func(name string, prob float64, dst petri.PlaceID) {
			if prob <= 0 {
				return
			}
			t := n.AddTransition(pfx+"classify-"+name, 0, prob)
			n.AddInput(t, classify, 1)
			n.AddOutput(t, dst, 1)
		}
		addClass("local", d.PLocal, localSvc)
		addClass("bc", d.PBc, qBc)
		addClass("rr", d.PRr, qRr)

		tLocal := n.AddTransition(pfx+"local-access", 1, 1)
		n.AddInput(tLocal, localSvc, 1)
		n.AddOutput(tLocal, think, 1)
		h.Completion = append(h.Completion, tLocal)

		if d.PBc > 0 {
			dur := int(math.Round(d.TBc(0)))
			if dur < 1 {
				dur = 1
			}
			serveBc := n.AddTransition(pfx+"serve-bc", dur, d.PBc)
			n.AddInput(serveBc, qBc, 1)
			n.AddInput(serveBc, busFree, 1)
			n.AddOutput(serveBc, busFree, 1)
			n.AddOutput(serveBc, supply, 1)
			h.BusServe = append(h.BusServe, serveBc)
		}
		if d.PRr > 0 {
			for _, bc := range rrCases(d) {
				if bc.duration < 1 {
					bc.duration = 1
				}
				t := n.AddTransition(pfx+"serve-rr-"+bc.name, bc.duration, d.PRr*bc.prob)
				n.AddInput(t, qRr, 1)
				n.AddInput(t, busFree, 1)
				n.AddOutput(t, busFree, 1)
				n.AddOutput(t, supply, 1)
				h.BusServe = append(h.BusServe, t)
			}
		}
		tSupply := n.AddTransition(pfx+"cache-supply", 1, 1)
		n.AddInput(tSupply, supply, 1)
		n.AddOutput(tSupply, think, 1)
		h.Completion = append(h.Completion, tSupply)
	}
	return n, h, nil
}

// Result holds detailed-model outputs in the same units as mva.Result.
type Result struct {
	N       int
	Mods    protocol.ModSet
	States  int
	R       float64 // mean time between memory requests per processor
	Speedup float64
	UBus    float64
}

// String renders the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf("%v N=%d (GTPN, %d states): speedup=%.3f R=%.3f U_bus=%.3f",
		r.Mods, r.N, r.States, r.Speedup, r.R, r.UBus)
}

// Solve builds the lumped net and computes speedup, R and bus utilization
// from the steady-state analysis.
func Solve(cfg Config, opts petri.Options) (Result, error) {
	return SolveContext(context.Background(), cfg, opts)
}

// SolveContext is Solve with cancellation: the reachability analysis checks
// ctx periodically and returns ctx.Err() (wrapped) when it fires.
func SolveContext(ctx context.Context, cfg Config, opts petri.Options) (Result, error) {
	n, h, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	ar, err := n.AnalyzeContext(ctx, opts)
	if err != nil {
		return Result{}, err
	}
	d, err := cfg.derive()
	if err != nil {
		return Result{}, err
	}
	var x float64
	for _, t := range h.Completion {
		x += ar.Throughput[t]
	}
	if x <= 0 {
		return Result{}, fmt.Errorf("gtpnmodel: zero completion rate")
	}
	var uBus float64
	for _, t := range h.BusServe {
		uBus += ar.TimeAvgInFlight[t]
	}
	res := Result{
		N:       cfg.N,
		Mods:    cfg.Mods,
		States:  ar.States,
		R:       float64(cfg.N) / x,
		UBus:    uBus,
		Speedup: x * (d.Params.Tau + d.Timing.TSupply),
	}
	return res, nil
}

// StateCount returns the reachability-graph size of the chosen variant
// without solving it.
func StateCount(cfg Config, perProcessor bool, opts petri.Options) (int, error) {
	return StateCountContext(context.Background(), cfg, perProcessor, opts)
}

// StateCountContext is StateCount with cancellation.
func StateCountContext(ctx context.Context, cfg Config, perProcessor bool, opts petri.Options) (int, error) {
	var n *petri.Net
	var err error
	if perProcessor {
		n, _, err = BuildPerProcessor(cfg)
	} else {
		n, _, err = Build(cfg)
	}
	if err != nil {
		return 0, err
	}
	return n.StateCountContext(ctx, opts)
}
