// Package mva implements the paper's primary contribution: the customized
// mean-value-analysis model of bus, memory, and cache interference for
// snooping cache-consistency protocols (Section 3), solved by fixed-point
// iteration (Section 3.2).
//
// The model's equations are implemented one-to-one:
//
//	(1)  R = τ + R_local + R_broadcast + R_RemoteRead + T_supply
//	(2)  R_local = p_local · n_interference · t_interference
//	(3)  R_broadcast = p_bc · (w_bus + w_mem + T_write)
//	(4)  R_RemoteRead = p_rr · (w_bus + t_read)
//	(5)  w_bus = (Q̄_bus − p_busy,bus)·t_bus + p_busy,bus·t_res,bus
//	(6)  Q̄_bus = (N−1)·(R_bc + R_rr)/R
//	(7)  U_bus = N·(p_bc·(w_mem+T_write) + p_rr·t_read)/R
//	(8)  p_busy,bus = (U_bus − U_bus/N)/(1 − U_bus/N)
//	(9)  t_bus = weighted mean bus access time
//	(10) t_res,bus = time-weighted mean residual life (deterministic service)
//	(11) w_mem = p_busy,mem · d_mem/2
//	(12) U_mem = N·(1/m)·[p_bc + p_rr(p_csupwb|rr + p_reqwb|rr)]·d_mem/R
//	(13) n_interference = p·(1 − p'^Q̄)/(1 − p')
//
// plus the Appendix B cache-interference quantities computed in
// internal/workload. Protocol modifications enter through the derived
// inputs (Section 3.3), not through structural changes to the equations.
package mva

import (
	"fmt"

	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

// Options tunes the fixed-point solution and enables the ablation switches
// used by the bench harness to quantify each modeling ingredient.
type Options struct {
	// Tol is the convergence tolerance on successive values of R.
	// Zero means 1e-10.
	Tol float64
	// MaxIter bounds the iteration count. Zero means 10000. (The paper
	// reports convergence within 15 iterations for all its experiments;
	// see Result.Iterations.)
	MaxIter int
	// Damping in (0,1] under-relaxes the waiting-time updates. Zero
	// means 1 (plain substitution, as in the paper), with an automatic
	// fallback ladder on non-convergence. Near saturation the iterates
	// converge as a damped oscillation (a complex eigenvalue pair of the
	// fixed-point map), which is why under-relaxation — not sequence
	// extrapolation — is the effective stabilizer.
	Damping float64
	// Warm, when non-nil, seeds the fixed-point iteration from a
	// previously converged solver state instead of the paper's zero-wait
	// start. Soundness: the solver iterates the same fixed-point map to
	// the same tolerance regardless of the start, so a warm start changes
	// only the trajectory (and hence the iteration count), not the
	// fixed point being approximated — adjacent-N solutions are close, so
	// sweeps seeded from the previous size converge in a fraction of the
	// iterations. The state must be finite with R > 0 and non-negative
	// waits; anything else is rejected as invalid input.
	Warm *WarmState

	// NoCacheInterference drops the R_local term of equation (2) —
	// ablation: how much does modeling snoop-induced cache blocking
	// matter?
	NoCacheInterference bool
	// NoMemoryInterference forces w_mem = 0 — ablation of equations
	// (11)–(12).
	NoMemoryInterference bool
	// NoResidualLife replaces the mean residual life t_res,bus of
	// equation (10) with the full mean access time t_bus — ablation of
	// the deterministic-service residual term.
	NoResidualLife bool
	// ExponentialBus models bus access times as exponential, making the
	// residual life equal to the full access time per class (the
	// [GrMi87] assumption the paper improves upon).
	ExponentialBus bool
	// NoArrivalCorrection uses N instead of N−1 in equation (6) and skips
	// the (U − U/N)/(1 − U/N) correction of equation (8) — ablation of
	// the arrival-theorem "customer removed" approximation.
	NoArrivalCorrection bool
	// SplitTransactionBus models a split-transaction bus: memory-supplied
	// reads release the bus during the memory latency (the bus occupancy
	// of a memory read drops by d_mem) while the requester still
	// experiences the full latency. The request and response arbitrations
	// are approximated by a single combined wait. This is the
	// architectural what-if the late-80s designs moved toward.
	SplitTransactionBus bool
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10000
	}
	if o.Damping == 0 {
		o.Damping = 1
	}
	return o
}

// WarmState is the fixed-point state (R, w_bus, w_mem) of a converged
// solve, reusable as the starting iterate of a nearby configuration via
// Options.Warm.
type WarmState struct {
	R    float64
	WBus float64
	WMem float64
}

// Result holds all model outputs for one configuration.
type Result struct {
	N    int
	Mods protocol.ModSet

	// R is the mean total time between memory requests (equation 1).
	R float64
	// Speedup = N·(τ + T_supply)/R (Section 4).
	Speedup float64
	// ProcessingPower = N·τ/R, the sum of processor utilizations
	// (Section 4.4).
	ProcessingPower float64

	// Response-time components (equations 2–4).
	RLocal      float64
	RBroadcast  float64
	RRemoteRead float64

	// Bus quantities (equations 5–10).
	WBus    float64
	QBus    float64
	UBus    float64
	TBus    float64
	TResBus float64

	// Memory quantities (equations 11–12).
	WMem float64
	UMem float64

	// Cache-interference quantities (equation 13, Appendix B).
	NInterference float64
	Interference  workload.Interference

	// Derived holds the model inputs the result was computed from.
	Derived workload.Derived

	// Iterations is the number of fixed-point iterations used.
	Iterations int
	// Residual is the final joint fixed-point delta over (R, w_bus,
	// w_mem) at convergence — the quantity compared against the
	// tolerance. Zero on a failed solve.
	Residual float64
}

// String renders the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf("%v N=%d: speedup=%.3f R=%.3f U_bus=%.3f w_bus=%.3f U_mem=%.3f",
		r.Mods, r.N, r.Speedup, r.R, r.UBus, r.WBus, r.UMem)
}

// Model bundles one solvable configuration.
type Model struct {
	// Workload holds the basic parameters. The Appendix A per-protocol
	// adjustments are applied automatically unless RawParams is set.
	Workload workload.Params
	// Timing holds the architectural constants; zero value means
	// workload.DefaultTiming().
	Timing workload.Timing
	// Mods selects the protocol (modification set over Write-Once).
	Mods protocol.ModSet
	// RawParams suppresses the automatic ForProtocol adjustment, for
	// callers that have already adjusted (or deliberately fixed) the
	// parameters.
	RawParams bool
	// WriteThroughBase models the degenerate all-write-through protocol
	// instead of Write-Once + Mods.
	WriteThroughBase bool
}

func (m Model) timing() workload.Timing {
	if m.Timing == (workload.Timing{}) {
		return workload.DefaultTiming()
	}
	return m.Timing
}

func (m Model) params() workload.Params {
	if m.RawParams {
		return m.Workload
	}
	return m.Workload.ForProtocol(m.Mods)
}

// Derive computes the model inputs for this configuration.
func (m Model) Derive() (workload.Derived, error) {
	if m.WriteThroughBase {
		// Per-protocol replacement adjustments are meaningless here:
		// write-through never dirties blocks.
		return workload.DeriveWriteThrough(m.Workload, m.timing())
	}
	return workload.Derive(m.params(), m.timing(), m.Mods)
}
