package mva

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/workload"
)

// ErrNoConvergence indicates the fixed point did not reach tolerance within
// the iteration budget.
var ErrNoConvergence = errors.New("mva: fixed point did not converge")

// ErrDiverged indicates the fixed-point iteration produced a non-finite
// iterate (NaN or Inf) — a silent numerical blow-up converted into a typed,
// recoverable error. The returned error is a *DivergenceError carrying the
// offending iterate.
var ErrDiverged = errors.New("mva: fixed point diverged to a non-finite iterate")

// DivergenceError records the offending iterate of a diverged fixed point.
// It wraps ErrDiverged.
type DivergenceError struct {
	N         int
	Iteration int
	R         float64
	WBus      float64
	WMem      float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("mva: fixed point diverged to a non-finite iterate at iteration %d (N=%d, R=%v, w_bus=%v, w_mem=%v)",
		e.Iteration, e.N, e.R, e.WBus, e.WMem)
}

// Unwrap makes errors.Is(err, ErrDiverged) hold.
func (e *DivergenceError) Unwrap() error { return ErrDiverged }

// ctxCheckInterval is how many fixed-point iterations run between
// cancellation checks (one atomic load per check).
const ctxCheckInterval = 64

// Solve computes the steady-state performance measures for n processors.
// The equations are iterated from zero waiting times (Section 3.2). With
// the default (zero) Damping, plain substitution is tried first — the
// paper's scheme — and the solver falls back to under-relaxed iteration if
// the plain scheme oscillates (which happens only deep in saturation, far
// beyond the paper's configurations). An explicitly set Damping disables
// the fallback.
func (m Model) Solve(n int, opts Options) (Result, error) {
	return m.SolveContext(context.Background(), n, opts)
}

// SolveContext is Solve with cancellation: the fixed-point loop checks ctx
// every few iterations and returns ctx.Err() (wrapped) when it fires.
func (m Model) SolveContext(ctx context.Context, n int, opts Options) (Result, error) {
	sc := acquireScratch()
	defer sc.release()
	return m.solveWithScratch(ctx, n, opts, sc)
}

// SolveMany solves the model at each size in ns, in order, on one pooled
// scratch. See SolveManyContext.
func (m Model) SolveMany(ns []int, opts Options) ([]Result, error) {
	return m.SolveManyContext(context.Background(), ns, opts)
}

// SolveManyContext solves the model at each size in ns, in order,
// amortizing the per-solve setup: the model inputs are derived once and
// every size's fixed point (including its damping-ladder attempts) runs
// off the same pooled scratch. Each point is a cold start — results are
// bitwise identical to independent SolveContext calls — and the batch
// stops at the first failing size, identifying it in the error.
func (m Model) SolveManyContext(ctx context.Context, ns []int, opts Options) ([]Result, error) {
	sc := acquireScratch()
	defer sc.release()
	out := make([]Result, 0, len(ns))
	for _, n := range ns {
		r, err := m.solveWithScratch(ctx, n, opts, sc)
		if err != nil {
			return nil, fmt.Errorf("mva: batch solve at N=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// solveWithScratch is one public solve attempt over a caller-provided
// scratch: the damping ladder, fault hooks and metrics of SolveContext
// with the derivation state shared across attempts (and, for batched
// callers, across solves).
func (m Model) solveWithScratch(ctx context.Context, n int, opts Options, sc *solveScratch) (res Result, err error) {
	defer func() { recordSolve(res, opts.Warm != nil, err) }()
	if h := faultinject.Hooks(); h != nil && h.SolveDelay != nil {
		if d := h.SolveDelay(n); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return Result{}, fmt.Errorf("mva: solve canceled during injected delay (N=%d): %w", n, ctx.Err())
			case <-timer.C:
			}
		}
	}
	if opts.Damping == 0 {
		var lastErr error
		for _, d := range []float64{1, 0.5, 0.2} {
			o := opts
			o.Damping = d
			res, err := m.solveOnce(ctx, n, o, sc)
			if err == nil {
				return res, nil
			}
			if !errors.Is(err, ErrNoConvergence) {
				return res, err
			}
			lastErr = err
		}
		return Result{}, lastErr
	}
	return m.solveOnce(ctx, n, opts, sc)
}

// solveOnce runs the damped fixed-point iteration at one damping factor:
// the inner loop every sweep point and campaign point reduces to. The
// caller's scratch carries the derived inputs and per-size interference
// quantities across ladder attempts and batched solves; every remaining
// loop quantity is hoisted to a precomputed scalar here, so the iterate
// itself is straight-line float arithmetic (one Exp, two divisions-free
// busy-probability evaluations) with no allocation and no struct copies.
//
//snoop:hotpath steady-state iterate must not allocate (gated by benchguard's zero-growth allocation budget)
func (m Model) solveOnce(ctx context.Context, n int, opts Options, sc *solveScratch) (Result, error) {
	o := opts.withDefaults()
	if h := faultinject.Hooks(); h != nil && h.MVAEnter != nil {
		h.MVAEnter(n)
	}
	if n < 1 {
		//lint:allow hotalloc invalid-input error exit, off the steady-state iterate
		return Result{}, fmt.Errorf("mva: system size %d < 1: %w", n, workload.ErrInvalid)
	}
	if o.Damping <= 0 || o.Damping > 1 {
		//lint:allow hotalloc invalid-input error exit, off the steady-state iterate
		return Result{}, fmt.Errorf("mva: damping %v outside (0,1]: %w", o.Damping, workload.ErrInvalid)
	}
	if err := sc.prepare(m); err != nil {
		return Result{}, err
	}
	sc.prepareN(n)
	d := &sc.d
	t := d.Timing
	tau := d.Params.Tau
	iv := sc.iv
	nf := float64(n)

	// Loop invariants of the iterate, hoisted so the steady-state loop
	// touches only scalars. The arithmetic below preserves the original
	// per-iteration expressions' operation order wherever a quantity is
	// merely precomputed, so hoisting does not move the fixed point.
	pBc, pRr, pLocal := d.PBc, d.PRr, d.PLocal
	tRead := d.TRead
	tSupply, tWrite, tInval, dMem := t.TSupply, t.TWrite, t.TInval, t.DMem
	bcTouchesMem := d.BroadcastTouchesMemory

	// Bus occupancy of a remote read: under a split-transaction bus the
	// memory latency of memory-supplied reads comes off the bus.
	tReadBus := tRead
	if o.SplitTransactionBus {
		tReadBus -= dMem * (1 - d.PCsupplyRR)
		if tReadBus < 1 {
			tReadBus = 1
		}
	}

	// Equation (6)'s arrival-theorem population and equation (12)'s
	// constant factor (everything except the 1/R).
	others := nf - 1
	if o.NoArrivalCorrection {
		others = nf
	}
	memFactor := nf * (1 / float64(t.BlockSize)) * d.MemOpsPerRequest() * dMem

	// Equations (9)–(10): the class weights of the bus access time are
	// request-mix constants; only tBc varies with w_mem.
	var fBc, fRr float64
	if busTotal := pBc + pRr; busTotal > 0 {
		fBc = pBc / busTotal
		fRr = pRr / busTotal
	}
	half := 2.0
	if o.ExponentialBus {
		// Memoryless access times: residual = full duration.
		half = 1.0
	}

	// Equation (13): the geometric interference term P'^Q̄ is evaluated
	// as Exp(Q̄·log P') with log P' precomputed per (model, n) — one Exp
	// per iteration instead of math.Pow's internal Log+Exp.
	ppGE1 := iv.PPrime >= 1
	ppZero := iv.PPrime <= 0
	lnPPrime := sc.lnPPrime
	invIntDenom := 0.0
	if !ppGE1 && !ppZero {
		invIntDenom = 1 - iv.PPrime
	}

	// Fixed-point state: waiting times start at zero (Section 3.2), or at
	// a caller-supplied converged state (warm start — same fixed point,
	// shorter trajectory; see Options.Warm).
	var wBus, wMem float64
	// Initial R with zero waits.
	r := tau + tSupply + pBc*d.TBc(0) + pRr*tRead
	if o.Warm != nil {
		ws := *o.Warm
		if !isFinite(ws.R) || ws.R <= 0 || !isFinite(ws.WBus) || ws.WBus < 0 ||
			!isFinite(ws.WMem) || ws.WMem < 0 {
			return Result{}, fmt.Errorf("mva: warm-start state (R=%v, w_bus=%v, w_mem=%v) is not a converged solver state: %w",
				//lint:allow hotalloc invalid-warm-start error exit, off the steady-state iterate
				ws.R, ws.WBus, ws.WMem, workload.ErrInvalid)
		}
		r, wBus, wMem = ws.R, ws.WBus, ws.WMem
	}

	iterations := 0
	hooks := faultinject.Hooks()
	for iter := 1; iter <= o.MaxIter; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				//lint:allow hotalloc cancellation exit, taken at most once per solve
				return partialResult(n, m, sc, iterations), fmt.Errorf("mva: solve interrupted at iteration %d (N=%d): %w", iter, n, err)
			}
		}
		// Broadcast bus occupancy (T_write + w_mem, or T_inval) — the
		// inlined body of Derived.TBc.
		tBc := tInval
		if bcTouchesMem {
			tBc = tWrite + wMem
		}

		// Equations (3) and (4): weighted response-time components.
		rBroadcast := pBc * (wBus + tBc)
		rRemoteRead := pRr * (wBus + tRead)

		// Equation (6): mean bus-queue population seen by an arrival —
		// the arrival-theorem heuristic (other N−1 caches at their
		// steady-state behavior).
		qBus := others * (rBroadcast + rRemoteRead) / r
		if qBus < 0 {
			qBus = 0
		}

		// Equation (7): bus utilization from per-cache bus demand.
		busDemand := pBc*tBc + pRr*tReadBus
		uBus := nf * busDemand / r
		// Equation (8): probability an arrival finds the bus busy.
		var pBusyBus float64
		if o.NoArrivalCorrection {
			pBusyBus = math.Min(uBus, 1)
		} else {
			pBusyBus = busyProbability(uBus, nf)
		}

		// Equations (9) and (10): mean access time and residual life.
		var tBus, tRes float64
		if busDemand > 0 {
			tBus = fBc*tBc + fRr*tReadBus
			// Residual life weights each class by its share of bus *time*
			// (length-biased sampling), then takes duration/2 for the
			// deterministic access times.
			wBcTime := pBc * tBc
			wRrTime := pRr * tReadBus
			tot := wBcTime + wRrTime
			tRes = (wBcTime/tot)*(tBc/half) + (wRrTime/tot)*(tReadBus/half)
			if o.NoResidualLife {
				tRes = tBus
			}
		}

		// Equation (5): mean bus waiting time. The waiting population
		// (those not in service) is Q̄ − p_busy; the approximation can go
		// slightly negative at light load, clamp at zero.
		waiting := qBus - pBusyBus
		if waiting < 0 {
			waiting = 0
		}
		newWBus := waiting*tBus + pBusyBus*tRes

		// Equations (11) and (12): memory-module interference.
		var newWMem float64
		var uMem float64
		if !o.NoMemoryInterference {
			uMem = memFactor / r
			var pBusyMem float64
			if o.NoArrivalCorrection {
				pBusyMem = math.Min(uMem, 1)
			} else {
				pBusyMem = busyProbability(uMem, nf)
			}
			newWMem = pBusyMem * dMem / 2
		}

		// Equation (13) and (2): cache interference on local requests.
		var nInt, rLocal float64
		if !o.NoCacheInterference && qBus > 0 {
			switch {
			case ppGE1:
				nInt = iv.P * qBus
			case ppZero:
				// P' = 0 and Q̄ > 0: the geometric term vanishes exactly
				// (0^Q̄ = 0), matching math.Pow's convention.
				nInt = iv.P
			default:
				nInt = iv.P * (1 - math.Exp(qBus*lnPPrime)) / invIntDenom
			}
			rLocal = pLocal * nInt * iv.TInterference
		}

		// Equation (1).
		newR := tau + rLocal + rBroadcast + rRemoteRead + tSupply

		stalled := false
		if hooks != nil {
			if hooks.MVAPoison != nil {
				if poison, ok := hooks.MVAPoison(iter); ok {
					newR = poison
				}
			}
			if hooks.MVAStall != nil && hooks.MVAStall(iter) {
				stalled = true
			}
		}

		// Numerical guardrail: a NaN or Inf iterate would otherwise
		// propagate silently through the damped update and either
		// "converge" to garbage or spin out the iteration budget.
		if !isFinite(newR) || !isFinite(newWBus) || !isFinite(newWMem) {
			//lint:allow hotalloc divergence error exit, taken at most once per solve
			return partialResult(n, m, sc, iterations), &DivergenceError{N: n, Iteration: iter, R: newR, WBus: newWBus, WMem: newWMem}
		}

		// Damped update and joint convergence check on the fixed-point
		// state (R, w_bus, w_mem) — checking R alone can declare false
		// convergence on the first iteration, before the waiting times
		// have moved off their zero start.
		prevWBus, prevWMem, prevR := wBus, wMem, r
		wBus = o.Damping*newWBus + (1-o.Damping)*wBus
		wMem = o.Damping*newWMem + (1-o.Damping)*wMem
		r = o.Damping*newR + (1-o.Damping)*r

		iterations = iter
		delta := math.Max(math.Abs(r-prevR),
			math.Max(math.Abs(wBus-prevWBus), math.Abs(wMem-prevWMem)))

		if delta < o.Tol*(1+math.Abs(r)) && !stalled {
			res := partialResult(n, m, sc, iterations)
			res.Residual = delta
			res.R = r
			res.RLocal = rLocal
			res.RBroadcast = rBroadcast
			res.RRemoteRead = rRemoteRead
			res.WBus = wBus
			res.QBus = qBus
			res.UBus = math.Min(uBus, 1)
			res.TBus = tBus
			res.TResBus = tRes
			res.WMem = wMem
			res.UMem = math.Min(uMem, 1)
			res.NInterference = nInt
			res.Speedup = nf * (tau + tSupply) / r
			res.ProcessingPower = nf * tau / r
			return res, nil
		}
	}
	//lint:allow hotalloc no-convergence error exit, off the steady-state iterate
	return partialResult(n, m, sc, iterations), fmt.Errorf("%w within %d iterations (N=%d, %v)", ErrNoConvergence, o.MaxIter, n, m.Mods)
}

// partialResult assembles the identity/provenance fields of a Result —
// the portion that is meaningful both on success (where the caller fills
// in the converged measures) and on the error exits (where diagnostics
// want to know how far the iteration got).
func partialResult(n int, m Model, sc *solveScratch, iterations int) Result {
	return Result{N: n, Mods: m.Mods, Derived: sc.d, Interference: sc.iv, Iterations: iterations}
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Warm returns the converged fixed-point state of a successful solve, for
// seeding a nearby configuration via Options.Warm.
func (r Result) Warm() WarmState {
	return WarmState{R: r.R, WBus: r.WBus, WMem: r.WMem}
}

// Sweep solves the model for each system size in ns, in order.
func (m Model) Sweep(ns []int, opts Options) ([]Result, error) {
	return m.SweepContext(context.Background(), ns, opts)
}

// SweepContext is Sweep with cancellation. Like SolveManyContext it runs
// every size off one pooled scratch (the model is derived once); unlike
// it, the caller's Options — including a warm start — apply unchanged to
// every size.
func (m Model) SweepContext(ctx context.Context, ns []int, opts Options) ([]Result, error) {
	sc := acquireScratch()
	defer sc.release()
	out := make([]Result, 0, len(ns))
	for _, n := range ns {
		r, err := m.solveWithScratch(ctx, n, opts, sc)
		if err != nil {
			return nil, fmt.Errorf("mva: sweep at N=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// AsymptoticSpeedup returns the bus-saturation speedup bound
// N·(τ+T_supply)/R as N→∞: the bus is the bottleneck, so throughput tends
// to 1/(bus demand per request) requests per cycle and speedup tends to
// (τ+T_supply)/busDemand. Memory waits at saturation are bounded by
// d_mem/2; this returns the bound with that worst-case wait included and
// excluded.
func (m Model) AsymptoticSpeedup() (lo, hi float64, err error) {
	d, err := m.Derive()
	if err != nil {
		return 0, 0, err
	}
	t := d.Timing
	base := d.Params.Tau + t.TSupply
	demandLo := d.PBc*d.TBc(t.DMem/2) + d.PRr*d.TRead
	demandHi := d.PBc*d.TBc(0) + d.PRr*d.TRead
	if demandHi <= 0 {
		// A workload that never touches the bus has no saturation bound:
		// the asymptote is genuinely infinite, and callers compare
		// against it (Inf bounds never clip a finite speedup).
		//lint:allow naninf the asymptotic bound of a zero-bus-demand workload is mathematically infinite
		return math.Inf(1), math.Inf(1), nil
	}
	return base / demandLo, base / demandHi, nil
}
