package mva

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func baseModel() Model {
	return Model{Workload: workload.AppendixA(workload.Sharing5)}
}

func TestSingleProcessorNoContention(t *testing.T) {
	res, err := baseModel().Solve(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WBus != 0 || res.QBus != 0 || res.WMem != 0 {
		t.Errorf("N=1 should have zero waits: wbus=%v q=%v wmem=%v", res.WBus, res.QBus, res.WMem)
	}
	if res.NInterference != 0 || res.RLocal != 0 {
		t.Errorf("N=1 should have no cache interference: %+v", res)
	}
	// Closed form: R = τ + T_supply + p_bc·T_write + p_rr·t_read.
	d := res.Derived
	want := 2.5 + 1 + d.PBc*1 + d.PRr*d.TRead
	if !approx(res.R, want, 1e-9) {
		t.Errorf("R = %v, want %v", res.R, want)
	}
	if !approx(res.Speedup, 3.5/want, 1e-9) {
		t.Errorf("speedup = %v, want %v", res.Speedup, 3.5/want)
	}
}

func TestSolveErrors(t *testing.T) {
	m := baseModel()
	if _, err := m.Solve(0, Options{}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := m.Solve(4, Options{Damping: 1.5}); err == nil {
		t.Error("bad damping accepted")
	}
	bad := m
	bad.Workload.Tau = -1
	if _, err := bad.Solve(4, Options{}); err == nil {
		t.Error("invalid workload accepted")
	}
	badMods := Model{Workload: workload.AppendixA(workload.Sharing5), Mods: protocol.Mods(protocol.Mod4)}
	if _, err := badMods.Solve(4, Options{}); err == nil {
		t.Error("impractical mod set accepted")
	}
}

func TestNoConvergenceError(t *testing.T) {
	_, err := baseModel().Solve(10, Options{MaxIter: 1, Tol: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("expected ErrNoConvergence, got %v", err)
	}
}

func TestDampingReachesSameFixedPoint(t *testing.T) {
	plain, err := baseModel().Solve(12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := baseModel().Solve(12, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(plain.Speedup, damped.Speedup, 1e-5) {
		t.Errorf("damped fixed point differs: %v vs %v", damped.Speedup, plain.Speedup)
	}
}

func TestSpeedupMonotoneInN(t *testing.T) {
	m := baseModel()
	prev := 0.0
	for n := 1; n <= 40; n++ {
		res, err := m.Solve(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Speedup < prev-1e-6 {
			t.Fatalf("speedup not monotone at N=%d: %v < %v", n, res.Speedup, prev)
		}
		prev = res.Speedup
	}
}

func TestSweep(t *testing.T) {
	rs, err := baseModel().Sweep([]int{1, 2, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].N != 1 || rs[2].N != 4 {
		t.Errorf("sweep wrong: %+v", rs)
	}
	if _, err := baseModel().Sweep([]int{1, 0}, Options{}); err == nil {
		t.Error("sweep should propagate solve errors")
	}
}

func TestAsymptoticSpeedupBrackets(t *testing.T) {
	m := baseModel()
	lo, hi, err := m.AsymptoticSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("lo %v > hi %v", lo, hi)
	}
	res, err := m.Solve(200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The approximate MVA can overshoot the saturation bound by ~1-2%
	// before settling — visible in the paper's own Table 4.1(b), where
	// the N=20 speedup (7.09) exceeds the N=100 value (7.04).
	if res.Speedup > hi*1.02 {
		t.Errorf("S(200)=%v exceeds asymptotic bound %v beyond the known overshoot", res.Speedup, hi)
	}
	if res.Speedup < lo*0.85 {
		t.Errorf("S(200)=%v far below saturation bracket [%v, %v]", res.Speedup, lo, hi)
	}
	// Zero-traffic workload: infinite asymptote.
	perfect := workload.AppendixA(workload.Sharing1)
	perfect.HPrivate, perfect.HSro, perfect.HSw = 1, 1, 1
	perfect.RPrivate = 1
	mInf := Model{Workload: perfect, RawParams: true}
	lo, hi, err = mInf.AsymptoticSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lo, 1) || !math.IsInf(hi, 1) {
		t.Errorf("perfect cache asymptote = %v, %v; want +Inf", lo, hi)
	}
}

func TestAsymptoticSpeedupError(t *testing.T) {
	bad := baseModel()
	bad.Workload.HSw = 2
	if _, _, err := bad.AsymptoticSpeedup(); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestResultString(t *testing.T) {
	res, _ := baseModel().Solve(4, Options{})
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestModelDeriveAppliesAdjustments(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing5), Mods: protocol.Mods(protocol.Mod1)}
	d, err := m.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.Params.RepP, 0.3, 1e-12) {
		t.Errorf("ForProtocol not applied: rep_p = %v", d.Params.RepP)
	}
	raw := m
	raw.RawParams = true
	d2, err := raw.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d2.Params.RepP, 0.2, 1e-12) {
		t.Errorf("RawParams should suppress adjustment: rep_p = %v", d2.Params.RepP)
	}
}

func TestCustomTimingUsed(t *testing.T) {
	fast := baseModel()
	fast.Timing = workload.DefaultTiming()
	fast.Timing.DMem = 0.5
	slow := baseModel()
	slow.Timing = workload.DefaultTiming()
	slow.Timing.DMem = 10
	f, err := fast.Solve(10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := slow.Solve(10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Speedup <= s.Speedup {
		t.Errorf("faster memory should raise speedup: %v vs %v", f.Speedup, s.Speedup)
	}
}

// --- Ablations ---

func TestAblationCacheInterference(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing20)}
	with, err := m.Solve(10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := m.Solve(10, Options{NoCacheInterference: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.Speedup < with.Speedup {
		t.Errorf("removing cache interference should not lower speedup: %v vs %v",
			without.Speedup, with.Speedup)
	}
	if without.RLocal != 0 || without.NInterference != 0 {
		t.Errorf("ablation left interference terms: %+v", without)
	}
	if with.RLocal <= 0 {
		t.Errorf("20%% sharing at N=10 should show cache interference, RLocal=%v", with.RLocal)
	}
}

func TestAblationMemoryInterference(t *testing.T) {
	m := baseModel()
	with, _ := m.Solve(10, Options{})
	without, err := m.Solve(10, Options{NoMemoryInterference: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.WMem != 0 || without.UMem != 0 {
		t.Errorf("ablation left memory terms: %+v", without)
	}
	if without.Speedup < with.Speedup {
		t.Errorf("removing memory interference should not lower speedup")
	}
}

func TestAblationResidualLife(t *testing.T) {
	m := baseModel()
	with, _ := m.Solve(10, Options{})
	without, err := m.Solve(10, Options{NoResidualLife: true})
	if err != nil {
		t.Fatal(err)
	}
	// Using the full access time as "residual" overstates waiting.
	if without.WBus <= with.WBus {
		t.Errorf("NoResidualLife should increase bus wait: %v vs %v", without.WBus, with.WBus)
	}
	if without.TResBus != without.TBus {
		t.Errorf("NoResidualLife must equate t_res and t_bus: %v vs %v", without.TResBus, without.TBus)
	}
}

func TestAblationExponentialBus(t *testing.T) {
	m := baseModel()
	det, _ := m.Solve(10, Options{})
	exp, err := m.Solve(10, Options{ExponentialBus: true})
	if err != nil {
		t.Fatal(err)
	}
	// Exponential access times double the residual life of the request in
	// service, so waits rise and speedup falls — the paper's advantage
	// over the [GrMi87] exponential model.
	if exp.WBus <= det.WBus {
		t.Errorf("exponential bus should increase wait: %v vs %v", exp.WBus, det.WBus)
	}
	if exp.Speedup >= det.Speedup {
		t.Errorf("exponential bus should lower speedup: %v vs %v", exp.Speedup, det.Speedup)
	}
}

func TestAblationArrivalCorrection(t *testing.T) {
	m := baseModel()
	with, _ := m.Solve(10, Options{})
	without, err := m.Solve(10, Options{NoArrivalCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	// Seeing all N customers (including oneself) inflates queueing.
	if without.Speedup >= with.Speedup {
		t.Errorf("NoArrivalCorrection should lower speedup: %v vs %v", without.Speedup, with.Speedup)
	}
}

// Property: for random valid workloads and any practical protocol, the
// solution is finite, speedup ∈ (0, N], utilizations ∈ [0,1], and R at
// least τ + T_supply.
func TestSolveInvariantsQuick(t *testing.T) {
	mods := protocol.AllModSets()
	f := func(sh, msIdx, nRaw uint8, h1000, sw1000 uint16) bool {
		p := workload.AppendixA(workload.Sharings()[int(sh)%3])
		p.HSw = float64(h1000%1001) / 1000
		sw := float64(sw1000%250) / 1000
		p.PSw = sw
		p.PPrivate = 1 - p.PSro - sw
		if p.Validate() != nil {
			return true
		}
		ms := mods[int(msIdx)%len(mods)]
		n := 1 + int(nRaw%64)
		res, err := (Model{Workload: p, Mods: ms}).Solve(n, Options{})
		if err != nil {
			return false
		}
		if math.IsNaN(res.R) || math.IsInf(res.R, 0) {
			return false
		}
		if res.Speedup <= 0 || res.Speedup > float64(n)+1e-9 {
			return false
		}
		if res.UBus < 0 || res.UBus > 1 || res.UMem < 0 || res.UMem > 1 {
			return false
		}
		return res.R >= 2.5+1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
