package mva

// Validation of the model against the numbers published in the paper.
// The derived-input formulas of [VeHo86] had to be reconstructed
// (DESIGN.md §4), so absolute speedups are checked against the published
// MVA values with a 10% tolerance band, while the paper's qualitative
// claims (protocol ordering, saturation, modification sensitivity) are
// checked tightly. EXPERIMENTS.md records the exact paper-vs-measured
// numbers produced by cmd/paperrepro.

import (
	"math"
	"testing"

	"snoopmva/internal/paperdata"
	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

// paperNs is the processor-count axis of Table 4.1.
var paperNs = paperdata.Ns

// paperTolerance is the acceptance band for absolute agreement with the
// published tables given the reconstructed workload submodel.
const paperTolerance = 0.10

func checkTable(t *testing.T, name string, ms protocol.ModSet, want map[workload.Sharing][]float64) {
	t.Helper()
	var worst float64
	for sharing, row := range want {
		m := Model{Workload: workload.AppendixA(sharing), Mods: ms}
		for i, n := range paperNs {
			res, err := m.Solve(n, Options{})
			if err != nil {
				t.Fatalf("%s %v N=%d: %v", name, sharing, n, err)
			}
			rel := math.Abs(res.Speedup-row[i]) / row[i]
			if rel > worst {
				worst = rel
			}
			if rel > paperTolerance {
				t.Errorf("%s %v N=%d: speedup %.3f vs paper %.3f (rel err %.1f%%)",
					name, sharing, n, res.Speedup, row[i], rel*100)
			}
		}
	}
	t.Logf("%s: worst relative error vs paper = %.2f%%", name, worst*100)
}

func TestTable41aWriteOnce(t *testing.T) {
	checkTable(t, "Table 4.1(a)", 0, paperdata.Table41a)
}

func TestTable41bMod1(t *testing.T) {
	checkTable(t, "Table 4.1(b)", protocol.Mods(protocol.Mod1), paperdata.Table41b)
}

func TestTable41cMods14(t *testing.T) {
	checkTable(t, "Table 4.1(c)", protocol.Mods(protocol.Mod1, protocol.Mod4), paperdata.Table41c)
}

// Section 4.4: processing power for mods 1+2+3, nine processors, 5%
// sharing — paper reports 4.32 (MVA) and 4.1 (GTPN).
func TestProcessingPowerMods123(t *testing.T) {
	m := Model{
		Workload: workload.AppendixA(workload.Sharing5),
		Mods:     protocol.Mods(protocol.Mod1, protocol.Mod2, protocol.Mod3),
	}
	res, err := m.Solve(9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcessingPower < 4.32*(1-paperTolerance) || res.ProcessingPower > 4.32*(1+paperTolerance) {
		t.Errorf("processing power = %.3f, paper reports 4.32", res.ProcessingPower)
	}
	// Cross-check the paper's alternative formula: speedup × τ/(τ+T_supply).
	alt := res.Speedup * 2.5 / 3.5
	if math.Abs(alt-res.ProcessingPower) > 1e-9 {
		t.Errorf("power identities disagree: %v vs %v", res.ProcessingPower, alt)
	}
}

// Section 4.2: for six processors, Write-Once, 5% sharing, the MVA bus
// utilization is ~77% (GTPN ~81%); check we land in that neighborhood.
func TestBusUtilizationSixProcessors(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	res, err := m.Solve(6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UBus < 0.67 || res.UBus > 0.87 {
		t.Errorf("U_bus = %.3f, paper reports ~0.77 (MVA) / ~0.81 (GTPN)", res.UBus)
	}
}

// Section 4.1: the protocols order WO <= WO+1 <= WO+1+4 at every sharing
// level and system size, and modification 4's advantage grows with sharing.
func TestProtocolOrdering(t *testing.T) {
	for _, sharing := range workload.Sharings() {
		for _, n := range paperNs {
			wo := mustSolve(t, Model{Workload: workload.AppendixA(sharing)}, n)
			m1 := mustSolve(t, Model{Workload: workload.AppendixA(sharing), Mods: protocol.Mods(protocol.Mod1)}, n)
			m14 := mustSolve(t, Model{Workload: workload.AppendixA(sharing), Mods: protocol.Mods(protocol.Mod1, protocol.Mod4)}, n)
			if m1.Speedup < wo.Speedup-1e-9 {
				t.Errorf("%v N=%d: WO+1 (%.3f) below WO (%.3f)", sharing, n, m1.Speedup, wo.Speedup)
			}
			if m14.Speedup < m1.Speedup-1e-9 {
				t.Errorf("%v N=%d: WO+1+4 (%.3f) below WO+1 (%.3f)", sharing, n, m14.Speedup, m1.Speedup)
			}
		}
	}
	// Mod 4 gain (WO+1+4 over WO+1) at N=20 grows with sharing level.
	gain := func(s workload.Sharing) float64 {
		m1 := mustSolve(t, Model{Workload: workload.AppendixA(s), Mods: protocol.Mods(protocol.Mod1)}, 20)
		m14 := mustSolve(t, Model{Workload: workload.AppendixA(s), Mods: protocol.Mods(protocol.Mod1, protocol.Mod4)}, 20)
		return m14.Speedup - m1.Speedup
	}
	g1, g5, g20 := gain(workload.Sharing1), gain(workload.Sharing5), gain(workload.Sharing20)
	if !(g1 <= g5 && g5 <= g20) {
		t.Errorf("mod 4 gain should grow with sharing: %.3f, %.3f, %.3f", g1, g5, g20)
	}
}

// Section 4.1: "Speedups for modifications 2 and 3 are nearly
// indistinguishable from the results for the protocols without these
// modifications" at the Appendix A workload.
func TestMods2And3NearNeutral(t *testing.T) {
	for _, sharing := range workload.Sharings() {
		base := mustSolve(t, Model{Workload: workload.AppendixA(sharing)}, 10)
		for _, m := range []protocol.Mod{protocol.Mod2, protocol.Mod3} {
			v := mustSolve(t, Model{Workload: workload.AppendixA(sharing), Mods: protocol.Mods(m)}, 10)
			rel := math.Abs(v.Speedup-base.Speedup) / base.Speedup
			if rel > 0.05 {
				t.Errorf("%v at %v changes speedup by %.1f%%, expected near-neutral",
					m, sharing, rel*100)
			}
		}
	}
}

// Section 4.4 / [ArBa86]: with amod_p = 0.95 the benefit of modification 2
// becomes comparable to modification 1 (1% sharing).
func TestAmodSensitivityMatchesArchibaldBaer(t *testing.T) {
	high := workload.AppendixA(workload.Sharing1)
	high.AmodPrivate = 0.95
	n := 10
	base := mustSolve(t, Model{Workload: high}, n)
	m1 := mustSolve(t, Model{Workload: high, Mods: protocol.Mods(protocol.Mod1)}, n)
	m2 := mustSolve(t, Model{Workload: high, Mods: protocol.Mods(protocol.Mod2)}, n)
	gain1 := m1.Speedup - base.Speedup
	gain2 := m2.Speedup - base.Speedup
	// With amod_p = 0.95 almost no private write hits broadcast, so the
	// two modifications' gains converge: they must be within a small
	// absolute band of each other (both near zero is acceptable).
	if math.Abs(gain1-gain2) > 0.15*base.Speedup {
		t.Errorf("amod_p=0.95: mod1 gain %.3f vs mod2 gain %.3f should be comparable", gain1, gain2)
	}
	// Contrast: at the default amod_p = 0.7, mod 1 clearly beats mod 2.
	def1 := mustSolve(t, Model{Workload: workload.AppendixA(workload.Sharing1), Mods: protocol.Mods(protocol.Mod1)}, n)
	def2 := mustSolve(t, Model{Workload: workload.AppendixA(workload.Sharing1), Mods: protocol.Mods(protocol.Mod2)}, n)
	defBase := mustSolve(t, Model{Workload: workload.AppendixA(workload.Sharing1)}, n)
	if (def1.Speedup - defBase.Speedup) <= 2*(def2.Speedup-defBase.Speedup) {
		t.Errorf("default amod_p: mod1 gain %.3f should dominate mod2 gain %.3f",
			def1.Speedup-defBase.Speedup, def2.Speedup-defBase.Speedup)
	}
}

// Section 4.3: the stress-test workload still solves and stays finite.
func TestStressWorkloadSolves(t *testing.T) {
	m := Model{Workload: workload.StressTest(), RawParams: true}
	for _, n := range []int{1, 4, 10, 50} {
		res, err := m.Solve(n, Options{})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if math.IsNaN(res.Speedup) || res.Speedup <= 0 || res.Speedup > float64(n) {
			t.Errorf("N=%d: speedup %v out of range", n, res.Speedup)
		}
	}
}

// Section 3.2: solution converges quickly. The paper reports < 15
// iterations at table precision; our default tolerance (1e-10) is far
// tighter, so allow a larger but still trivially cheap budget there, and
// check the paper-precision tolerance separately.
func TestConvergesQuickly(t *testing.T) {
	for _, sharing := range workload.Sharings() {
		for _, ms := range protocol.AllModSets() {
			m := Model{Workload: workload.AppendixA(sharing), Mods: ms}
			res, err := m.Solve(20, Options{})
			if err != nil {
				t.Fatalf("%v %v: %v", sharing, ms, err)
			}
			if res.Iterations > 250 {
				t.Errorf("%v %v: %d iterations at tol 1e-10", sharing, ms, res.Iterations)
			}
			coarse, err := m.Solve(20, Options{Tol: 1e-3})
			if err != nil {
				t.Fatalf("%v %v coarse: %v", sharing, ms, err)
			}
			if coarse.Iterations > 45 {
				t.Errorf("%v %v: %d iterations at paper precision, expected tens at most",
					sharing, ms, coarse.Iterations)
			}
			// The coarse solution must already be close to the converged one.
			if math.Abs(coarse.Speedup-res.Speedup)/res.Speedup > 0.02 {
				t.Errorf("%v %v: coarse speedup %.4f far from converged %.4f",
					sharing, ms, coarse.Speedup, res.Speedup)
			}
		}
	}
}

// Table 4.1(c) note: speedup saturates — N=100 within a few percent of N=20.
func TestSaturationByTwenty(t *testing.T) {
	for _, sharing := range workload.Sharings() {
		m := Model{Workload: workload.AppendixA(sharing)}
		s20 := mustSolve(t, m, 20)
		s100 := mustSolve(t, m, 100)
		if math.Abs(s100.Speedup-s20.Speedup)/s20.Speedup > 0.05 {
			t.Errorf("%v: S(100)=%.3f vs S(20)=%.3f — should have saturated", sharing, s100.Speedup, s20.Speedup)
		}
	}
}

func mustSolve(t *testing.T, m Model, n int) Result {
	t.Helper()
	res, err := m.Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}
