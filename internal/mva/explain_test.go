package mva

import (
	"errors"
	"strings"
	"testing"

	"snoopmva/internal/workload"
)

func TestExplainCoversEveryEquation(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	res, err := m.Solve(10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Explain(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"eq 2", "eq 3", "eq 4", "eq 5", "eq 6", "eq 7", "eq 9", "eq 10",
		"eq 11", "eq 12", "eq 13", "equation 1",
		"p_local", "t_read", "speedup", "processing power",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q", want)
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n <= 0 {
		return 0, errors.New("boom")
	}
	return len(p), nil
}

func TestExplainPropagatesWriteErrors(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	res, err := m.Solve(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Explain(&failWriter{n: 2}, res); err == nil {
		t.Error("write error not propagated")
	}
}
