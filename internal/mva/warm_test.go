package mva

import (
	"errors"
	"math"
	"testing"

	"snoopmva/internal/workload"
)

// TestWarmStartAgreesWithCold asserts the warm-start soundness claim: the
// fixed point does not depend on the starting iterate, so a solve seeded
// from an adjacent size's converged state lands on the same solution (to
// solver tolerance) in fewer iterations.
func TestWarmStartAgreesWithCold(t *testing.T) {
	m := baseModel()
	prev, err := m.Solve(9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Solve(10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := prev.Warm()
	warm, err := m.Solve(10, Options{Warm: &ws})
	if err != nil {
		t.Fatal(err)
	}
	// Agreement on every headline measure at a tolerance generous relative
	// to the 1e-10 solver tolerance but far below model accuracy.
	for _, q := range [][2]float64{
		{cold.R, warm.R},
		{cold.Speedup, warm.Speedup},
		{cold.UBus, warm.UBus},
		{cold.WBus, warm.WBus},
		{cold.WMem, warm.WMem},
	} {
		if math.Abs(q[0]-q[1]) > 1e-7*(1+math.Abs(q[0])) {
			t.Errorf("warm result diverges from cold: %v vs %v", q[1], q[0])
		}
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start did not save iterations: warm %d >= cold %d",
			warm.Iterations, cold.Iterations)
	}
}

// TestWarmStartFromOwnSolution asserts a solve seeded from its own fixed
// point converges almost immediately.
func TestWarmStartFromOwnSolution(t *testing.T) {
	m := baseModel()
	cold, err := m.Solve(20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := cold.Warm()
	warm, err := m.Solve(20, Options{Warm: &ws})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 5 {
		t.Errorf("re-solve from own fixed point took %d iterations", warm.Iterations)
	}
	if math.Abs(warm.Speedup-cold.Speedup) > 1e-8*(1+math.Abs(cold.Speedup)) {
		t.Errorf("re-solve moved the solution: %v vs %v", warm.Speedup, cold.Speedup)
	}
}

// TestWarmStartRejectsInvalidState asserts garbage warm states fail as
// invalid input instead of silently poisoning the iteration.
func TestWarmStartRejectsInvalidState(t *testing.T) {
	m := baseModel()
	bad := []WarmState{
		{R: math.NaN(), WBus: 0, WMem: 0},
		{R: math.Inf(1), WBus: 0, WMem: 0},
		{R: 0, WBus: 0, WMem: 0},
		{R: -1, WBus: 0, WMem: 0},
		{R: 10, WBus: math.NaN(), WMem: 0},
		{R: 10, WBus: -0.5, WMem: 0},
		{R: 10, WBus: 0, WMem: math.Inf(-1)},
	}
	for i, ws := range bad {
		state := ws
		if _, err := m.Solve(4, Options{Warm: &state}); !errors.Is(err, workload.ErrInvalid) {
			t.Errorf("case %d (%+v): err = %v, want ErrInvalid", i, ws, err)
		}
	}
}

// TestWarmSweepIterationSavings quantifies the motivating effect across
// the paper's N=1..100 curve: a chained warm sweep uses strictly fewer
// total iterations than per-size cold solves, and every point agrees.
func TestWarmSweepIterationSavings(t *testing.T) {
	m := baseModel()
	coldTotal, warmTotal := 0, 0
	var warm *WarmState
	for n := 1; n <= 100; n++ {
		cold, err := m.Solve(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		coldTotal += cold.Iterations
		wr, err := m.Solve(n, Options{Warm: warm})
		if err != nil {
			t.Fatal(err)
		}
		warmTotal += wr.Iterations
		if math.Abs(wr.Speedup-cold.Speedup) > 1e-7*(1+math.Abs(cold.Speedup)) {
			t.Fatalf("N=%d: warm %v vs cold %v", n, wr.Speedup, cold.Speedup)
		}
		ws := wr.Warm()
		warm = &ws
	}
	if warmTotal >= coldTotal {
		t.Errorf("warm sweep used %d iterations, cold %d — no savings", warmTotal, coldTotal)
	}
	t.Logf("N=1..100 sweep iterations: cold %d, warm %d (%.1f%%)",
		coldTotal, warmTotal, 100*float64(warmTotal)/float64(coldTotal))
}
