package mva

import (
	"math"
	"testing"

	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

func TestHeterogeneousReducesToSingleClass(t *testing.T) {
	// One group must reproduce the single-class solver closely (the only
	// difference is the joint damping schedule).
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	for _, n := range []int{1, 4, 10, 20} {
		h, err := SolveHeterogeneous([]Group{{Name: "all", Count: n, Model: m}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Solve(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(h.Speedup-s.Speedup) / s.Speedup; rel > 1e-6 {
			t.Errorf("N=%d: hetero %v vs single %v (rel %.2e)", n, h.Speedup, s.Speedup, rel)
		}
	}
}

func TestHeterogeneousSplitGroupsMatchWhole(t *testing.T) {
	// Splitting identical processors into two groups must not change the
	// answer.
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	whole, err := SolveHeterogeneous([]Group{{Count: 8, Model: m}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveHeterogeneous([]Group{
		{Name: "a", Count: 3, Model: m},
		{Name: "b", Count: 5, Model: m},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(split.Speedup-whole.Speedup) / whole.Speedup; rel > 1e-6 {
		t.Errorf("split %v vs whole %v", split.Speedup, whole.Speedup)
	}
	if split.PerGroup[0].Count != 3 || split.PerGroup[1].Name != "b" {
		t.Errorf("group bookkeeping wrong: %+v", split.PerGroup)
	}
}

func TestHeterogeneousMixedWorkloads(t *testing.T) {
	// A compute-heavy group (long think time) mixed with a memory-heavy
	// group: the compute group must see a shorter R and the memory group
	// must feel the shared-bus contention.
	light := Model{Workload: workload.AppendixA(workload.Sharing1)}
	light.Workload.Tau = 20
	heavy := Model{Workload: workload.AppendixA(workload.Sharing20)}
	res, err := SolveHeterogeneous([]Group{
		{Name: "compute", Count: 4, Model: light},
		{Name: "memory", Count: 8, Model: heavy},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessors != 12 {
		t.Errorf("total = %d", res.TotalProcessors)
	}
	// Each group's per-processor utilization τ/R must be higher for the
	// compute group.
	uc := 20.0 / res.PerGroup[0].R
	um := 2.5 / res.PerGroup[1].R
	if uc <= um {
		t.Errorf("compute utilization %v should exceed memory-bound %v", uc, um)
	}
	if res.UBus <= 0 || res.UBus > 1 {
		t.Errorf("U_bus = %v", res.UBus)
	}
	// The heavy group competing for the same bus must be slower than it
	// would be alone.
	alone, err := heavy.Solve(8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerGroup[1].R <= alone.R {
		t.Errorf("shared-bus R %v should exceed alone R %v", res.PerGroup[1].R, alone.R)
	}
}

func TestHeterogeneousMixedProtocols(t *testing.T) {
	// Groups may run different protocols over the same bus (e.g. during a
	// migration study): Dragon processors should outperform Write-Once
	// ones under the same workload.
	wo := Model{Workload: workload.AppendixA(workload.Sharing20)}
	dragon := Model{Workload: workload.AppendixA(workload.Sharing20), Mods: protocol.Mods(protocol.Mod1, protocol.Mod2, protocol.Mod3, protocol.Mod4)}
	res, err := SolveHeterogeneous([]Group{
		{Name: "wo", Count: 5, Model: wo},
		{Name: "dragon", Count: 5, Model: dragon},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perWO := res.PerGroup[0].Speedup / 5
	perDragon := res.PerGroup[1].Speedup / 5
	if perDragon <= perWO {
		t.Errorf("Dragon per-processor %v should beat WO %v", perDragon, perWO)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	if _, err := SolveHeterogeneous(nil, Options{}); err == nil {
		t.Error("empty groups accepted")
	}
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	if _, err := SolveHeterogeneous([]Group{{Count: 0, Model: m}}, Options{}); err == nil {
		t.Error("zero count accepted")
	}
	bad := m
	bad.Workload.HSw = 9
	if _, err := SolveHeterogeneous([]Group{{Count: 2, Model: bad}}, Options{}); err == nil {
		t.Error("invalid workload accepted")
	}
	slow := m
	slow.Timing = workload.DefaultTiming()
	slow.Timing.DMem = 9
	if _, err := SolveHeterogeneous([]Group{
		{Count: 2, Model: m},
		{Count: 2, Model: slow},
	}, Options{}); err == nil {
		t.Error("mismatched timing accepted")
	}
}

func TestHeterogeneousIdentities(t *testing.T) {
	m := Model{Workload: workload.AppendixA(workload.Sharing5)}
	res, err := SolveHeterogeneous([]Group{
		{Name: "a", Count: 2, Model: m},
		{Name: "b", Count: 6, Model: m},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, g := range res.PerGroup {
		sum += g.Speedup
	}
	if math.Abs(sum-res.Speedup) > 1e-9 {
		t.Errorf("speedup decomposition broken: %v vs %v", sum, res.Speedup)
	}
	if res.ProcessingPower >= res.Speedup {
		t.Errorf("power %v must be below speedup %v (T_supply overhead)", res.ProcessingPower, res.Speedup)
	}
}
