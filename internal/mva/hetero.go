package mva

import (
	"context"
	"fmt"
	"math"

	"snoopmva/internal/queueing"
	"snoopmva/internal/workload"
)

// Group is one homogeneous set of processors in a heterogeneous system:
// Count processors all running the same workload. Different groups share
// the bus and memory but may differ arbitrarily in workload parameters —
// a multi-class generalization of the paper's single-class model, built
// from the same equations with per-class arrival-theorem terms.
type Group struct {
	Name  string
	Count int
	Model Model
}

// HeteroResult holds the multi-group solution.
type HeteroResult struct {
	// PerGroup results: R and speedup per processor of each group.
	PerGroup []GroupResult
	// TotalProcessors across groups.
	TotalProcessors int
	// Speedup is the aggregate Σ N_g·(τ_g+T_supply)/R_g.
	Speedup float64
	// ProcessingPower is Σ N_g·τ_g/R_g.
	ProcessingPower float64
	// UBus and WBus are the shared-bus measures.
	UBus float64
	WBus float64
	// UMem and WMem are the shared-memory measures.
	UMem float64
	WMem float64
	// Iterations of the joint fixed point.
	Iterations int
}

// GroupResult is one group's slice of the solution.
type GroupResult struct {
	Name    string
	Count   int
	R       float64
	Speedup float64 // per-group N_g·(τ_g+T_supply)/R_g
}

// SolveHeterogeneous computes the joint steady state of several processor
// groups sharing one bus and memory. All groups must use the same timing
// constants (one bus, one memory system).
func SolveHeterogeneous(groups []Group, opts Options) (HeteroResult, error) {
	return SolveHeterogeneousContext(context.Background(), groups, opts)
}

// SolveHeterogeneousContext is SolveHeterogeneous with cancellation: the
// joint fixed point checks ctx every few iterations and returns ctx.Err()
// when it fires.
func SolveHeterogeneousContext(ctx context.Context, groups []Group, opts Options) (HeteroResult, error) {
	o := opts.withDefaults()
	if len(groups) == 0 {
		return HeteroResult{}, fmt.Errorf("mva: no groups: %w", workload.ErrInvalid)
	}
	type gState struct {
		g     Group
		d     workload.Derived
		iv    workload.Interference
		r     float64
		tau   float64
		nf    float64
		rBc   float64
		rRr   float64
		local float64
	}
	gs := make([]gState, len(groups))
	total := 0
	var timing workload.Timing
	for i, g := range groups {
		if g.Count < 1 {
			return HeteroResult{}, fmt.Errorf("mva: group %d count %d < 1: %w", i, g.Count, workload.ErrInvalid)
		}
		d, err := g.Model.Derive()
		if err != nil {
			return HeteroResult{}, fmt.Errorf("mva: group %d: %w", i, err)
		}
		if i == 0 {
			timing = d.Timing
		} else if d.Timing != timing {
			return HeteroResult{}, fmt.Errorf("mva: groups must share timing constants: %w", workload.ErrInvalid)
		}
		total += g.Count
		gs[i] = gState{g: g, d: d, tau: d.Params.Tau, nf: float64(g.Count)}
	}
	t := timing
	for i := range gs {
		// Snooping interference sees the whole machine.
		gs[i].iv = gs[i].d.Interference(total)
		d := gs[i].d
		gs[i].r = gs[i].tau + t.TSupply + d.PBc*d.TBc(0) + d.PRr*d.TRead
	}

	var wBus, wMem float64
	res := HeteroResult{TotalProcessors: total}
	for iter := 1; iter <= o.MaxIter; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("mva: heterogeneous solve canceled after %d iterations: %w", iter, err)
			}
		}
		// Per-group response components with the current shared waits.
		for i := range gs {
			d := gs[i].d
			tBc := d.TBc(wMem)
			gs[i].rBc = d.PBc * (wBus + tBc)
			gs[i].rRr = d.PRr * (wBus + d.TRead)
		}
		// Shared-bus aggregates.
		var uBus, busOpRate, busTimeRate float64
		for i := range gs {
			d := gs[i].d
			tBc := d.TBc(wMem)
			demand := d.PBc*tBc + d.PRr*d.TRead
			uBus += gs[i].nf * demand / gs[i].r
			busOpRate += gs[i].nf * (d.PBc + d.PRr) / gs[i].r
			busTimeRate += gs[i].nf * demand / gs[i].r
		}
		// Mean access time over all classes (op-weighted) and residual
		// life (time-weighted, deterministic service).
		var tBus, tRes float64
		if busOpRate > 0 {
			for i := range gs {
				d := gs[i].d
				tBc := d.TBc(wMem)
				wBcOps := gs[i].nf * d.PBc / gs[i].r
				wRrOps := gs[i].nf * d.PRr / gs[i].r
				tBus += (wBcOps*tBc + wRrOps*d.TRead) / busOpRate
				if busTimeRate > 0 {
					tRes += (wBcOps * tBc / busTimeRate) * (tBc / 2)
					tRes += (wRrOps * d.TRead / busTimeRate) * (d.TRead / 2)
				}
			}
		}
		pBusyBus, err := queueing.BusyProbabilityFinite(uBus, total)
		if err != nil {
			return HeteroResult{}, err
		}
		// Queue seen by an arrival: every processor's steady-state bus
		// residence, minus the arriving customer's own share (approximated
		// by scaling its own group's term by (N_g−1)/N_g would make w_bus
		// class-dependent; we use the population-wide correction as in
		// equation (6) with mixed classes).
		var qBus float64
		for i := range gs {
			qBus += gs[i].nf * (gs[i].rBc + gs[i].rRr) / gs[i].r
		}
		qBus *= float64(total-1) / float64(total)
		waiting := qBus - pBusyBus
		if waiting < 0 {
			waiting = 0
		}
		newWBus := waiting*tBus + pBusyBus*tRes

		// Shared-memory interference.
		var uMem float64
		for i := range gs {
			uMem += gs[i].nf * (1 / float64(t.BlockSize)) * gs[i].d.MemOpsPerRequest() * t.DMem / gs[i].r
		}
		pBusyMem, err := queueing.BusyProbabilityFinite(uMem, total)
		if err != nil {
			return HeteroResult{}, err
		}
		newWMem := pBusyMem * t.DMem / 2

		// Per-group cache interference and response.
		var maxDelta float64
		for i := range gs {
			d := gs[i].d
			iv := gs[i].iv
			var rLocal float64
			if qBus > 0 && iv.P > 0 {
				var nInt float64
				if iv.PPrime >= 1 {
					nInt = iv.P * qBus
				} else {
					nInt = iv.P * (1 - math.Pow(iv.PPrime, qBus)) / (1 - iv.PPrime)
				}
				rLocal = d.PLocal * nInt * iv.TInterference
			}
			gs[i].local = rLocal
			newR := gs[i].tau + t.TSupply + rLocal + gs[i].rBc + gs[i].rRr
			delta := math.Abs(newR - gs[i].r)
			if delta > maxDelta {
				maxDelta = delta
			}
			gs[i].r = 0.5*newR + 0.5*gs[i].r
		}
		dw := math.Max(math.Abs(newWBus-wBus), math.Abs(newWMem-wMem))
		wBus = 0.5*newWBus + 0.5*wBus
		wMem = 0.5*newWMem + 0.5*wMem
		res.Iterations = iter
		if math.Max(maxDelta, dw) < o.Tol*(1+wBus) {
			res.WBus = wBus
			res.WMem = wMem
			res.UBus = math.Min(uBus, 1)
			res.UMem = math.Min(uMem, 1)
			for i := range gs {
				gr := GroupResult{
					Name:    gs[i].g.Name,
					Count:   gs[i].g.Count,
					R:       gs[i].r,
					Speedup: gs[i].nf * (gs[i].tau + t.TSupply) / gs[i].r,
				}
				res.PerGroup = append(res.PerGroup, gr)
				res.Speedup += gr.Speedup
				res.ProcessingPower += gs[i].nf * gs[i].tau / gs[i].r
			}
			return res, nil
		}
	}
	return res, fmt.Errorf("%w (heterogeneous, %d groups)", ErrNoConvergence, len(groups))
}
