package mva

import (
	"math"
	"sync"

	"snoopmva/internal/workload"
)

// solveScratch is the pooled per-solve state of the fixed point: the
// derived model inputs plus every loop invariant the iterate needs, so a
// solve performs the derivation work once and the steady-state loop runs
// on precomputed scalars. One scratch serves a whole SolveContext call
// (all damping-ladder attempts reuse the derivation) and a whole
// SolveManyContext batch (consecutive sizes of the same model reuse it
// too; only the per-size interference quantities are recomputed).
//
// Pooling contract: a scratch is acquired at a public solve entry point
// and released before it returns — it never escapes a solve call, and no
// caller may hold one across solves. Results never alias scratch memory
// (Result is a value), so releasing is always safe.
type solveScratch struct {
	// Derived model inputs, cached per model.
	haveModel bool
	model     Model
	d         workload.Derived

	// Per-size interference quantities, cached per (model, n).
	haveN    bool
	n        int
	iv       workload.Interference
	lnPPrime float64 // log(iv.PPrime) for 0 < PPrime < 1; else unused
}

var scratchPool = sync.Pool{New: func() any { return new(solveScratch) }}

func acquireScratch() *solveScratch {
	return scratchPool.Get().(*solveScratch)
}

func (sc *solveScratch) release() {
	// Invalidate the cached derivation so a pool reuse under a different
	// model can never read stale state even if a bug skipped prepare.
	sc.haveModel = false
	sc.haveN = false
	scratchPool.Put(sc)
}

// prepare derives the model inputs, reusing the cached derivation when
// the scratch was last prepared for an identical model (Model is a pure
// value, so equality is exact input identity).
func (sc *solveScratch) prepare(m Model) error {
	if sc.haveModel && sc.model == m {
		return nil
	}
	sc.haveModel = false
	sc.haveN = false
	d, err := m.Derive()
	if err != nil {
		return err
	}
	sc.d = d
	sc.model = m
	sc.haveModel = true
	return nil
}

// prepareN computes the per-size interference quantities, including the
// precomputed log of P' that lets the iterate evaluate the Appendix B
// geometric term with one Exp instead of a full Pow per iteration.
func (sc *solveScratch) prepareN(n int) {
	if sc.haveN && sc.n == n {
		return
	}
	sc.iv = sc.d.Interference(n)
	sc.lnPPrime = 0
	if sc.iv.PPrime > 0 && sc.iv.PPrime < 1 {
		sc.lnPPrime = math.Log(sc.iv.PPrime)
	}
	sc.n = n
	sc.haveN = true
}

// busyProbability is queueing.BusyProbabilityFinite with the error
// plumbing stripped for the steady-state iterate: the preconditions
// (population >= 1, utilization >= 0) are established once per solve, so
// the per-iteration call reduces to the arithmetic. The operations match
// the queueing helper exactly (same order, same division by nf), so the
// computed probability is bit-identical.
func busyProbability(util, nf float64) float64 {
	if nf <= 1 {
		return 0
	}
	share := util / nf
	if share >= 1 {
		return 1
	}
	p := (util - share) / (1 - share)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
