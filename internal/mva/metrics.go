package mva

import (
	"context"
	"errors"

	"snoopmva/internal/obs"
	"snoopmva/internal/workload"
)

// Metrics of the MVA fixed point (catalog in DESIGN.md §12). Vernon et
// al.'s efficiency claim is that the fixed point converges in a handful of
// iterations; the iteration histogram (split by cold vs. warm start) and
// the final-residual histogram are that claim made observable at runtime.
// All series are materialized at init, so the per-solve cost is a few
// atomic updates — nothing is recorded inside the iteration loop itself.
var (
	solvesOK            = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "ok"))
	solvesNoConvergence = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "no_convergence"))
	solvesDiverged      = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "diverged"))
	solvesCanceled      = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "canceled"))
	solvesInvalid       = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "invalid"))
	solvesOther         = obs.Default.Counter("snoopmva_mva_solves_total", "MVA fixed-point solves by outcome.", obs.L("outcome", "error"))

	iterBuckets    = obs.ExpBuckets(1, 2, 12) // 1 .. 2048
	iterationsCold = obs.Default.Histogram("snoopmva_mva_iterations", "Fixed-point iterations per successful solve, by start kind.", iterBuckets, obs.L("start", "cold"))
	iterationsWarm = obs.Default.Histogram("snoopmva_mva_iterations", "Fixed-point iterations per successful solve, by start kind.", iterBuckets, obs.L("start", "warm"))

	finalResidual = obs.Default.Histogram("snoopmva_mva_final_residual", "Final fixed-point residual (joint delta over R, w_bus, w_mem) of successful solves.",
		obs.ExpBuckets(1e-14, 10, 12)) // 1e-14 .. 1e-3

	warmIterationsSaved = obs.Default.Counter("snoopmva_mva_warm_iterations_saved_total", "Iterations saved by warm-started solves versus the running cold mean (floored at zero per solve).")
)

// recordSolve feeds one completed public solve attempt into the metrics.
func recordSolve(res Result, warm bool, err error) {
	if err != nil {
		switch {
		case errors.Is(err, ErrNoConvergence):
			solvesNoConvergence.Inc()
		case errors.Is(err, ErrDiverged):
			solvesDiverged.Inc()
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			solvesCanceled.Inc()
		case errors.Is(err, workload.ErrInvalid):
			solvesInvalid.Inc()
		default:
			solvesOther.Inc()
		}
		return
	}
	solvesOK.Inc()
	finalResidual.Observe(res.Residual)
	if warm {
		iterationsWarm.Observe(float64(res.Iterations))
		// Savings estimate against the running cold mean: coarse, but it
		// turns "warm starts help" into a number an operator can watch.
		if n := iterationsCold.Count(); n > 0 {
			coldMean := iterationsCold.Sum() / float64(n)
			if saved := coldMean - float64(res.Iterations); saved >= 1 {
				warmIterationsSaved.Add(uint64(saved))
			}
		}
		return
	}
	iterationsCold.Observe(float64(res.Iterations))
}
