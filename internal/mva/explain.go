package mva

import (
	"fmt"
	"io"
)

// Explain writes an equation-by-equation breakdown of a solved result: the
// derived inputs, each response-time component with the equation number it
// comes from, and the interference submodels. It is the model made
// auditable — every number can be traced to a line of Section 3.
func Explain(w io.Writer, r Result) error {
	d := r.Derived
	t := d.Timing
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	steps := []func() error{
		func() error {
			return p("Configuration: %v, N=%d, τ=%.3g, T_supply=%.3g\n\n", r.Mods, r.N, d.Params.Tau, t.TSupply)
		},
		func() error {
			return p("Derived inputs (Section 2.3 / DESIGN.md §4):\n"+
				"  p_local      = %.4f   (request satisfied in the cache)\n"+
				"  p_bc         = %.4f   (broadcast: write-word/invalidate/update)\n"+
				"  p_rr         = %.4f   (remote read / read-mod)\n"+
				"  t_read       = %.4f   cycles (cache-supply mix %.3f, supplier wb %.3f, requester wb %.3f)\n"+
				"  broadcasts touch memory: %v\n\n",
				d.PLocal, d.PBc, d.PRr, d.TRead, d.PCsupplyRR, d.PCsupWbRR, d.PReqWbRR,
				d.BroadcastTouchesMemory)
		},
		func() error {
			return p("Bus submodel (equations 5-10):\n"+
				"  U_bus        = %.4f   (eq 7)\n"+
				"  Q̄_bus        = %.4f   customers seen by an arrival (eq 6)\n"+
				"  t_bus        = %.4f   mean access time (eq 9)\n"+
				"  t_res        = %.4f   mean residual life (eq 10)\n"+
				"  w_bus        = %.4f   mean wait (eq 5)\n\n",
				r.UBus, r.QBus, r.TBus, r.TResBus, r.WBus)
		},
		func() error {
			return p("Memory submodel (equations 11-12):\n"+
				"  U_mem        = %.4f   per module (eq 12, %d modules)\n"+
				"  w_mem        = %.4f   (eq 11)\n\n",
				r.UMem, t.BlockSize, r.WMem)
		},
		func() error {
			return p("Cache-interference submodel (eq 13, Appendix B):\n"+
				"  p            = %.4f   (cache must act on a bus request)\n"+
				"  p'           = %.4f   (held for the whole transaction)\n"+
				"  t_interf     = %.4f   cycles per interfering request\n"+
				"  n_interf     = %.4f   expected interfering requests\n\n",
				r.Interference.P, r.Interference.PPrime, r.Interference.TInterference, r.NInterference)
		},
		func() error {
			return p("Response time (equation 1):\n"+
				"  τ            = %8.4f\n"+
				"  R_local      = %8.4f   (eq 2)\n"+
				"  R_broadcast  = %8.4f   (eq 3)\n"+
				"  R_remoteread = %8.4f   (eq 4)\n"+
				"  T_supply     = %8.4f\n"+
				"  R            = %8.4f   (converged in %d iterations)\n\n",
				d.Params.Tau, r.RLocal, r.RBroadcast, r.RRemoteRead, t.TSupply, r.R, r.Iterations)
		},
		func() error {
			return p("Results: speedup = N(τ+T_supply)/R = %.4f, processing power = %.4f\n",
				r.Speedup, r.ProcessingPower)
		},
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	return nil
}
