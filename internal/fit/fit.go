// Package fit estimates the paper's basic workload parameters from a
// memory-reference trace — the "workload measurement studies to aid in the
// assignment of parameter values" the paper's conclusion calls for.
//
// The estimator replays the trace against per-processor, per-class LRU
// shadow caches (with dirty bits) and a global residency map, and counts
// exactly the events the parameters describe:
//
//	p_class      class frequencies
//	r_class      read fractions
//	h_class      shadow-cache hit rates
//	amod_class   write hits finding the block dirty
//	csupply_*    misses finding the block resident in another shadow cache
//	wb_csupply   of those, the fraction whose holder is dirty
//	rep_*        evictions of dirty blocks
//
// The shadow caches deliberately ignore coherence actions (no
// invalidations): that is what a measurement study over a raw address
// trace sees, and it matches the "basic parameter" semantics of Section
// 2.3. τ cannot be recovered from a reference trace (it is processor
// speed, not reference behavior) and is taken from the config.
package fit

import (
	"errors"
	"fmt"

	"snoopmva/internal/trace"
	"snoopmva/internal/workload"
)

// Config controls the estimator.
type Config struct {
	// N is the number of processors in the trace.
	N int
	// Tau is the mean think time to embed in the fitted parameters
	// (not derivable from a reference trace). Zero means 2.5.
	Tau float64
	// Shadow-cache capacities per class (blocks). Zero values mean
	// 16 sw / 64 sro / 128 private, matching the simulator defaults.
	SWCapacity, SROCapacity, PrivCapacity int
	// Warmup references per processor excluded from counting (cold-start
	// misses would bias the hit rates). Zero means 1000; negative means
	// no warmup.
	Warmup int
}

func (c Config) withDefaults() Config {
	if c.Tau == 0 {
		c.Tau = 2.5
	}
	if c.SWCapacity == 0 {
		c.SWCapacity = 16
	}
	if c.SROCapacity == 0 {
		c.SROCapacity = 64
	}
	if c.PrivCapacity == 0 {
		c.PrivCapacity = 128
	}
	if c.Warmup == 0 {
		c.Warmup = 1000
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("fit: N=%d < 1", c.N)
	}
	if c.Tau < 0 {
		return fmt.Errorf("fit: negative tau %v", c.Tau)
	}
	d := c.withDefaults()
	if d.SWCapacity < 1 || d.SROCapacity < 1 || d.PrivCapacity < 1 {
		return errors.New("fit: capacities must be positive")
	}
	return nil
}

// line is one shadow-cache entry.
type line struct {
	block uint32
	dirty bool
}

// shadow is one per-class LRU shadow cache.
type shadow struct {
	cap   int
	lines []line // LRU order: oldest first
}

// lookup finds the block; on hit it is moved to MRU and its dirty flag
// or'd with write. Returns (hit, wasDirtyBeforeWrite).
func (s *shadow) lookup(block uint32, write bool) (bool, bool) {
	for i := range s.lines {
		if s.lines[i].block == block {
			l := s.lines[i]
			wasDirty := l.dirty
			l.dirty = l.dirty || write
			copy(s.lines[i:], s.lines[i+1:])
			s.lines[len(s.lines)-1] = l
			return true, wasDirty
		}
	}
	return false, false
}

// insert adds the block at MRU, evicting LRU if full. Returns whether an
// eviction happened and whether the victim was dirty.
func (s *shadow) insert(block uint32, write bool) (evicted, victimDirty bool) {
	if len(s.lines) >= s.cap {
		evicted = true
		victimDirty = s.lines[0].dirty
		copy(s.lines, s.lines[1:])
		s.lines = s.lines[:len(s.lines)-1]
	}
	s.lines = append(s.lines, line{block: block, dirty: write})
	return evicted, victimDirty
}

// holds reports residency and dirtiness without touching LRU order.
func (s *shadow) holds(block uint32) (bool, bool) {
	for i := range s.lines {
		if s.lines[i].block == block {
			return true, s.lines[i].dirty
		}
	}
	return false, false
}

// Estimate holds the fitted parameters and the sample sizes behind them.
type Estimate struct {
	// Params are the fitted basic parameters (Tau from the config).
	Params workload.Params
	// Refs is the total number of counted (post-warmup) references.
	Refs int64
	// PerClass counts the references per class (private, sro, sw).
	PerClass [3]int64
	// Misses counts shadow-cache misses per class.
	Misses [3]int64
	// Evictions counts capacity evictions per class.
	Evictions [3]int64
}

// Fit replays the trace and estimates the parameters.
func Fit(refs []trace.Ref, cfg Config) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(refs) == 0 {
		return nil, errors.New("fit: empty trace")
	}
	capOf := func(c trace.Class) int {
		switch c {
		case trace.SW:
			return cfg.SWCapacity
		case trace.SRO:
			return cfg.SROCapacity
		default:
			return cfg.PrivCapacity
		}
	}
	// shadows[p][class]
	shadows := make([][]shadow, cfg.N)
	for p := range shadows {
		shadows[p] = make([]shadow, 3)
		for c := range shadows[p] {
			shadows[p][c].cap = capOf(trace.Class(c))
		}
	}
	seen := make([]int, cfg.N) // references per processor (for warmup)

	var (
		est                   Estimate
		reads                 [3]int64
		hits                  [3]int64
		writeHits             [3]int64
		writeHitsDirty        [3]int64
		missesWithHolder      [3]int64
		missesWithDirtyHolder [3]int64
		evictDirty            [3]int64
	)
	for _, r := range refs {
		p := int(r.Proc)
		if p < 0 || p >= cfg.N {
			return nil, fmt.Errorf("fit: reference for processor %d outside N=%d", p, cfg.N)
		}
		if r.Class > trace.SW {
			return nil, fmt.Errorf("fit: invalid class %d", r.Class)
		}
		c := int(r.Class)
		sh := &shadows[p][c]
		counted := seen[p] >= cfg.Warmup
		seen[p]++

		hit, wasDirty := sh.lookup(r.Block, r.Write)
		var evicted, victimDirty bool
		if !hit {
			// For shared classes, check residency elsewhere before insert.
			var holder, dirtyHolder bool
			if r.Class != trace.Private {
				for q := 0; q < cfg.N; q++ {
					if q == p {
						continue
					}
					h, d := shadows[q][c].holds(r.Block)
					holder = holder || h
					dirtyHolder = dirtyHolder || d
				}
			}
			evicted, victimDirty = sh.insert(r.Block, r.Write)
			if counted {
				est.Misses[c]++
				if holder {
					missesWithHolder[c]++
				}
				if dirtyHolder {
					missesWithDirtyHolder[c]++
				}
			}
		}
		if !counted {
			continue
		}
		est.Refs++
		est.PerClass[c]++
		if !r.Write {
			reads[c]++
		}
		if hit {
			hits[c]++
			if r.Write {
				writeHits[c]++
				if wasDirty {
					writeHitsDirty[c]++
				}
			}
		}
		if evicted {
			est.Evictions[c]++
			if victimDirty {
				evictDirty[c]++
			}
		}
	}
	if est.Refs == 0 {
		return nil, errors.New("fit: no references survived warmup")
	}

	frac := func(num, den int64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	w := workload.Params{
		Tau:      cfg.Tau,
		PPrivate: frac(est.PerClass[trace.Private], est.Refs),
		PSro:     frac(est.PerClass[trace.SRO], est.Refs),
		PSw:      frac(est.PerClass[trace.SW], est.Refs),

		HPrivate: frac(hits[trace.Private], est.PerClass[trace.Private]),
		HSro:     frac(hits[trace.SRO], est.PerClass[trace.SRO]),
		HSw:      frac(hits[trace.SW], est.PerClass[trace.SW]),

		RPrivate: frac(reads[trace.Private], est.PerClass[trace.Private]),
		RSw:      frac(reads[trace.SW], est.PerClass[trace.SW]),

		AmodPrivate: frac(writeHitsDirty[trace.Private], writeHits[trace.Private]),
		AmodSw:      frac(writeHitsDirty[trace.SW], writeHits[trace.SW]),

		CsupplySro: frac(missesWithHolder[trace.SRO], est.Misses[trace.SRO]),
		CsupplySw:  frac(missesWithHolder[trace.SW], est.Misses[trace.SW]),
		WbCsupply:  frac(missesWithDirtyHolder[trace.SW], missesWithHolder[trace.SW]),

		RepP:  frac(evictDirty[trace.Private], est.Evictions[trace.Private]),
		RepSw: frac(evictDirty[trace.SW], est.Evictions[trace.SW]),
	}
	// Close the partition exactly (counting rounds off).
	w.PPrivate = 1 - w.PSro - w.PSw
	est.Params = w
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("fit: estimated parameters invalid: %w", err)
	}
	return &est, nil
}
