package fit

import (
	"math"
	"testing"

	"snoopmva/internal/mva"
	"snoopmva/internal/trace"
	"snoopmva/internal/workload"
)

func makeTrace(t *testing.T, n, refs int, w workload.Params, seed uint64) []trace.Ref {
	t.Helper()
	g, err := trace.NewGenerator(trace.GeneratorConfig{N: n, Workload: w, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Ref, 0, refs)
	for i := 0; i < refs; i++ {
		r, ok := g.Next(i % n)
		if !ok {
			t.Fatal("generator exhausted")
		}
		out = append(out, r)
	}
	return out
}

func TestValidation(t *testing.T) {
	if _, err := Fit(nil, Config{N: 2}); err == nil {
		t.Error("empty trace accepted")
	}
	refs := []trace.Ref{{Proc: 0}}
	if _, err := Fit(refs, Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Fit(refs, Config{N: 2, Tau: -1}); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := Fit(refs, Config{N: 2, SWCapacity: -3}); err == nil {
		t.Error("negative capacity accepted")
	}
	// Reference outside N.
	bad := []trace.Ref{{Proc: 9}}
	if _, err := Fit(bad, Config{N: 2, Warmup: -1}); err == nil {
		t.Error("out-of-range processor accepted")
	}
	badClass := []trace.Ref{{Proc: 0, Class: trace.Class(7)}}
	if _, err := Fit(badClass, Config{N: 1, Warmup: -1}); err == nil {
		t.Error("invalid class accepted")
	}
	// All references consumed by warmup.
	small := []trace.Ref{{Proc: 0}, {Proc: 0}}
	if _, err := Fit(small, Config{N: 1, Warmup: 10}); err == nil {
		t.Error("warmup-swallowed trace accepted")
	}
}

// Round trip: generate a trace from known parameters, fit, and compare the
// recovered parameters against the generator targets.
func TestRoundTripRecoversParameters(t *testing.T) {
	target := workload.AppendixA(workload.Sharing5)
	const n = 4
	refs := makeTrace(t, n, 400000, target, 7)
	est, err := Fit(refs, Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	got := est.Params
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.4f, want %.4f ± %.3f", name, got, want, tol)
		}
	}
	check("p_private", got.PPrivate, target.PPrivate, 0.01)
	check("p_sro", got.PSro, target.PSro, 0.005)
	check("p_sw", got.PSw, target.PSw, 0.005)
	check("r_private", got.RPrivate, target.RPrivate, 0.01)
	check("r_sw", got.RSw, target.RSw, 0.03)
	// Hit rates: the shadow capacity matches the generator working set,
	// so recovered rates should track the targets closely.
	check("h_private", got.HPrivate, target.HPrivate, 0.03)
	check("h_sro", got.HSro, target.HSro, 0.03)
	check("h_sw", got.HSw, target.HSw, 0.05)
	// Tau passes through.
	if got.Tau != 2.5 {
		t.Errorf("tau = %v", got.Tau)
	}
	// Derived fractions live in [0,1] and the estimate is valid.
	if err := got.Validate(); err != nil {
		t.Errorf("fitted parameters invalid: %v", err)
	}
	// Sample-size bookkeeping.
	if est.Refs <= 0 || est.PerClass[0] <= est.PerClass[2] {
		t.Errorf("bookkeeping wrong: %+v", est)
	}
}

// The measurement loop the paper's conclusion asks for: fitted parameters
// fed to the MVA give nearly the same predictions as the true parameters.
func TestFittedParametersPredictLikeTruth(t *testing.T) {
	target := workload.AppendixA(workload.Sharing5)
	const n = 4
	refs := makeTrace(t, n, 400000, target, 21)
	est, err := Fit(refs, Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []int{4, 10, 20} {
		truth, err := (mva.Model{Workload: target, RawParams: true}).Solve(sys, mva.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fitted, err := (mva.Model{Workload: est.Params, RawParams: true}).Solve(sys, mva.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(fitted.Speedup-truth.Speedup) / truth.Speedup
		if rel > 0.15 {
			t.Errorf("N=%d: fitted-parameter speedup %.3f vs truth %.3f (rel %.1f%%)",
				sys, fitted.Speedup, truth.Speedup, rel*100)
		}
	}
}

func TestDirtyTracking(t *testing.T) {
	// Hand-built trace on one processor, private class, capacity 2.
	refs := []trace.Ref{
		{Proc: 0, Block: 1, Write: true},  // miss, insert dirty
		{Proc: 0, Block: 1, Write: true},  // write hit, already dirty
		{Proc: 0, Block: 2, Write: false}, // miss
		{Proc: 0, Block: 3, Write: false}, // miss, evicts 1 (dirty)
		{Proc: 0, Block: 2, Write: true},  // write hit, clean
	}
	est, err := Fit(refs, Config{N: 1, Warmup: 1, PrivCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Counted refs: 4 (first is warmup).
	if est.Refs != 4 {
		t.Fatalf("refs = %d", est.Refs)
	}
	// amod_private: write hits = 2 (blocks 1 and 2); dirty on arrival = 1.
	if got := est.Params.AmodPrivate; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("amod_private = %v, want 0.5", got)
	}
	// rep_p: one eviction, dirty victim.
	if est.Evictions[0] != 1 || est.Params.RepP != 1 {
		t.Errorf("evictions = %d, rep_p = %v", est.Evictions[0], est.Params.RepP)
	}
}

func TestCsupplyTracking(t *testing.T) {
	// Two processors touching the same sw block: the second one's miss
	// finds a (dirty) holder.
	refs := []trace.Ref{
		{Proc: 0, Class: trace.SW, Block: 5, Write: true},
		{Proc: 1, Class: trace.SW, Block: 5, Write: false},
		{Proc: 1, Class: trace.SW, Block: 6, Write: false}, // no holder
	}
	est, err := Fit(refs, Config{N: 2, Warmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Misses[trace.SW] != 3 {
		t.Fatalf("sw misses = %d", est.Misses[trace.SW])
	}
	// One of the three sw misses (proc 1's re-reference of block 5) had a
	// holder => csupply_sw = 1/3.
	if got := est.Params.CsupplySw; math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("csupply_sw = %v, want 1/3", got)
	}
	// That holder was dirty => wb_csupply = 1.
	if got := est.Params.WbCsupply; got != 1 {
		t.Errorf("wb_csupply = %v, want 1", got)
	}
}

func TestShadowLRUOrder(t *testing.T) {
	s := shadow{cap: 2}
	s.insert(1, false)
	s.insert(2, false)
	// Touch 1 so 2 becomes LRU.
	if hit, _ := s.lookup(1, false); !hit {
		t.Fatal("expected hit")
	}
	evicted, dirty := s.insert(3, false)
	if !evicted || dirty {
		t.Fatalf("evicted=%v dirty=%v", evicted, dirty)
	}
	// 2 must be gone, 1 must remain.
	if h, _ := s.holds(2); h {
		t.Error("LRU victim not evicted")
	}
	if h, _ := s.holds(1); !h {
		t.Error("recently used block evicted")
	}
}
