package snoopmva

import (
	"strings"
	"time"

	"snoopmva/internal/obs"
)

// Root-package metrics (catalog in DESIGN.md §12): the degradation ladder
// and the campaign runner made observable. Series are materialized at
// init; recording costs one atomic update per event.
var (
	stageFallbackGTPN = obs.Default.Counter("snoopmva_solvebest_stage_fallbacks_total", "SolveBest ladder stages abandoned to a cheaper model.", obs.L("stage", "gtpn"))
	stageFallbackSim  = obs.Default.Counter("snoopmva_solvebest_stage_fallbacks_total", "SolveBest ladder stages abandoned to a cheaper model.", obs.L("stage", "simulation"))

	bestByMethod = map[Method]*obs.Counter{
		MethodGTPN:       obs.Default.Counter("snoopmva_solvebest_results_total", "SolveBest results by producing model.", obs.L("method", "gtpn")),
		MethodSimulation: obs.Default.Counter("snoopmva_solvebest_results_total", "SolveBest results by producing model.", obs.L("method", "simulation")),
		MethodMVA:        obs.Default.Counter("snoopmva_solvebest_results_total", "SolveBest results by producing model.", obs.L("method", "mva")),
	}

	campaignPointsOK      = obs.Default.Counter("snoopmva_campaign_points_total", "Campaign points completed, by outcome.", obs.L("outcome", "ok"))
	campaignPointsFailed  = obs.Default.Counter("snoopmva_campaign_points_total", "Campaign points completed, by outcome.", obs.L("outcome", "failed"))
	campaignPointsResumed = obs.Default.Counter("snoopmva_campaign_points_total", "Campaign points completed, by outcome.", obs.L("outcome", "resumed"))

	campaignStageSkipped = map[string]*obs.Counter{
		stageGTPN: obs.Default.Counter("snoopmva_campaign_stage_skipped_total", "Ladder stages skipped by the open circuit breaker.", obs.L("stage", "gtpn")),
		stageSim:  obs.Default.Counter("snoopmva_campaign_stage_skipped_total", "Ladder stages skipped by the open circuit breaker.", obs.L("stage", "simulation")),
	}

	campaignPointsPerSec = obs.Default.Gauge("snoopmva_campaign_points_per_sec", "Throughput of the most recently finished campaign (points computed by that run per second).")
	campaignRuns         = obs.Default.Counter("snoopmva_campaign_runs_total", "Campaign runs finished (successfully or not).")
)

// recordBestResult feeds one successful SolveBest outcome into the
// metrics: which model produced the numbers, and which stages degraded on
// the way there.
func recordBestResult(b BestResult) {
	if c, ok := bestByMethod[b.Method]; ok {
		c.Inc()
	}
	if !b.Degraded {
		return
	}
	// FallbackReason lists the abandoned stages as "stage: cause" clauses;
	// Method tells us which rungs ran, so count the ones above it.
	switch b.Method {
	case MethodSimulation:
		stageFallbackGTPN.Inc()
	case MethodMVA:
		// Degraded MVA means at least one upper rung was attempted and
		// failed; FallbackReason distinguishes which.
		if strings.Contains(b.FallbackReason, "gtpn:") {
			stageFallbackGTPN.Inc()
		}
		if strings.Contains(b.FallbackReason, "simulation:") {
			stageFallbackSim.Inc()
		}
	}
}

// recordCampaign feeds a finished campaign run into the metrics.
func recordCampaign(res CampaignResult, elapsed time.Duration) {
	campaignRuns.Inc()
	for _, pr := range res.Results {
		switch {
		case pr.Resumed:
			campaignPointsResumed.Inc()
		case pr.Err != "":
			campaignPointsFailed.Inc()
		default:
			campaignPointsOK.Inc()
		}
	}
	if secs := elapsed.Seconds(); secs > 0 && res.Computed > 0 {
		campaignPointsPerSec.Set(float64(res.Computed) / secs)
	}
}
