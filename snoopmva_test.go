package snoopmva

import (
	"math"
	"strings"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	w := AppendixA(Sharing5)
	res, err := Solve(WriteOnce(), w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 4.5 || res.Speedup > 6 {
		t.Errorf("WO 5%% N=10 speedup = %v, expected ~5.2", res.Speedup)
	}
	if res.N != 10 || res.Iterations == 0 || res.R <= 3.5 {
		t.Errorf("result incomplete: %+v", res)
	}
}

func TestAppendixAPanicsOnBadSharing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AppendixA(Sharing(3))
}

func TestWorkloadValidate(t *testing.T) {
	w := AppendixA(Sharing1)
	if err := w.Validate(); err != nil {
		t.Errorf("Appendix A invalid: %v", err)
	}
	w.HSw = 2
	if err := w.Validate(); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestStressWorkload(t *testing.T) {
	w := StressWorkload()
	if !w.FixedParams {
		t.Error("stress workload must pin its parameters")
	}
	if w.CsupplySro != 1 || w.PSw != 0.2 {
		t.Errorf("stress values wrong: %+v", w)
	}
	if _, err := Solve(WriteOnce(), w, 8); err != nil {
		t.Errorf("stress workload should solve: %v", err)
	}
}

func TestProtocolConstructors(t *testing.T) {
	cases := []struct {
		p    Protocol
		name string
		mods []int
	}{
		{WriteOnce(), "Write-Once", nil},
		{Synapse(), "Synapse", []int{3}},
		{Berkeley(), "Berkeley", []int{2, 3}},
		{Illinois(), "Illinois", []int{1, 2, 3}},
		{Dragon(), "Dragon", []int{1, 2, 3, 4}},
		{RWB(), "RWB", []int{1, 3, 4}},
		{WriteThrough(), "Write-Through", []int{4}},
	}
	for _, c := range cases {
		if c.p.Name() != c.name {
			t.Errorf("name = %q, want %q", c.p.Name(), c.name)
		}
		got := c.p.Mods()
		if len(got) != len(c.mods) {
			t.Errorf("%s mods = %v, want %v", c.name, got, c.mods)
			continue
		}
		for i := range got {
			if got[i] != c.mods[i] {
				t.Errorf("%s mods = %v, want %v", c.name, got, c.mods)
			}
		}
	}
	if !Dragon().HasMod(4) || Dragon().HasMod(9) || WriteOnce().HasMod(1) {
		t.Error("HasMod wrong")
	}
	if WriteOnce().String() == "" {
		t.Error("empty protocol string")
	}
}

func TestWithMods(t *testing.T) {
	p := WithMods(1, 4)
	if !p.HasMod(1) || !p.HasMod(4) || p.HasMod(2) {
		t.Errorf("WithMods(1,4) = %v", p.Mods())
	}
	if _, err := Solve(p, AppendixA(Sharing5), 4); err != nil {
		t.Errorf("mods 1+4 should solve: %v", err)
	}
	if _, err := Solve(WithMods(4), AppendixA(Sharing5), 4); err == nil {
		t.Error("mod 4 alone should be rejected")
	}
	if _, err := Solve(WithMods(7), AppendixA(Sharing5), 4); err == nil {
		t.Error("invalid mod number should be rejected")
	}
}

func TestProtocolByNameAndList(t *testing.T) {
	p, ok := ProtocolByName("dragon")
	if !ok || p.Name() != "Dragon" {
		t.Errorf("ProtocolByName = %v, %v", p, ok)
	}
	if _, ok := ProtocolByName("zzz"); ok {
		t.Error("unknown name resolved")
	}
	if len(Protocols()) != 7 {
		t.Errorf("Protocols() = %d entries", len(Protocols()))
	}
}

func TestSweepAndCompare(t *testing.T) {
	w := AppendixA(Sharing5)
	rs, err := Sweep(WriteOnce(), w, []int{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || !(rs[0].Speedup < rs[1].Speedup && rs[1].Speedup < rs[2].Speedup) {
		t.Errorf("sweep not increasing: %+v", rs)
	}
	if _, err := Sweep(WriteOnce(), w, []int{0}); err == nil {
		t.Error("sweep should propagate errors")
	}
	cs, err := Compare([]Protocol{WriteOnce(), Illinois(), Dragon()}, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(cs[0].Speedup <= cs[1].Speedup && cs[1].Speedup <= cs[2].Speedup) {
		t.Errorf("protocol ordering broken: %v %v %v", cs[0].Speedup, cs[1].Speedup, cs[2].Speedup)
	}
	if _, err := Compare([]Protocol{WithMods(9)}, w, 4); err == nil {
		t.Error("compare should propagate errors")
	}
}

func TestSolveWithOptionsAndTiming(t *testing.T) {
	w := AppendixA(Sharing20)
	base, err := SolveWith(WriteOnce(), w, Timing{}, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := SolveWith(WriteOnce(), w, Timing{}, 10, Options{
		NoCacheInterference: true, NoMemoryInterference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Speedup < base.Speedup {
		t.Error("ablations should not reduce speedup")
	}
	slow := DefaultTiming()
	slow.DMem = 12
	slowRes, err := SolveWith(WriteOnce(), w, slow, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Speedup >= base.Speedup {
		t.Error("slower memory should reduce speedup")
	}
}

func TestSolveDetailedAgreesWithSolve(t *testing.T) {
	w := AppendixA(Sharing5)
	g, err := SolveDetailed(WriteOnce(), w, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SolveWith(WriteOnce(), w, Timing{}, 4, Options{
		NoCacheInterference: true, NoMemoryInterference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Speedup-g.Speedup) / g.Speedup; rel > 0.035 {
		t.Errorf("MVA %.3f vs detailed %.3f (rel %.1f%%)", m.Speedup, g.Speedup, rel*100)
	}
	if g.States == 0 {
		t.Error("detailed result missing state count")
	}
	if _, err := SolveDetailed(WithMods(4), w, 2); err == nil {
		t.Error("invalid protocol accepted")
	}
}

func TestSimulate(t *testing.T) {
	w := AppendixA(Sharing5)
	r, err := Simulate(Illinois(), w, 6, SimOptions{Seed: 9, MeasureCycles: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 0 || r.Speedup > 6 {
		t.Errorf("sim speedup %v out of range", r.Speedup)
	}
	if !(r.SpeedupLow <= r.Speedup && r.Speedup <= r.SpeedupHigh) {
		t.Errorf("CI [%v, %v] does not bracket %v", r.SpeedupLow, r.SpeedupHigh, r.Speedup)
	}
	if r.ObservedAmod < 0 || r.ObservedAmod > 1 || r.ObservedCsupply < 0 || r.ObservedCsupply > 1 {
		t.Errorf("observed quantities out of range: %+v", r)
	}
	if _, err := Simulate(WithMods(4), w, 2, SimOptions{}); err == nil {
		t.Error("invalid protocol accepted")
	}
}

func TestExperimentRegistryAccess(t *testing.T) {
	ids := Experiments()
	if len(ids) != 11 {
		t.Errorf("Experiments() = %d ids", len(ids))
	}
	var sb strings.Builder
	if err := RunExperiment("power", &sb, 0, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4.32") {
		t.Errorf("power report missing paper value:\n%s", sb.String())
	}
	if err := RunExperiment("nope", &sb, 0, -1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSharingInternalError(t *testing.T) {
	if _, err := Sharing(7).internal(); err == nil {
		t.Error("bad sharing accepted")
	}
}

func TestDefaultTimingValues(t *testing.T) {
	d := DefaultTiming()
	if d.TSupply != 1 || d.DMem != 3 || d.BlockSize != 4 || d.TBlock != 4 {
		t.Errorf("defaults wrong: %+v", d)
	}
}
