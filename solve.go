package snoopmva

import (
	"fmt"
	"io"

	"snoopmva/internal/cachesim"
	"snoopmva/internal/exp"
	"snoopmva/internal/gtpnmodel"
	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
)

// Result holds the MVA model's outputs for one configuration.
type Result struct {
	// N is the number of processors solved for.
	N int
	// Speedup is N·(τ+T_supply)/R, the paper's Section 4 metric.
	Speedup float64
	// ProcessingPower is the sum of processor utilizations, N·τ/R.
	ProcessingPower float64
	// R is the mean total time between memory requests (equation 1).
	R float64
	// BusUtilization and BusWait are the equation (7)/(5) bus measures.
	BusUtilization float64
	BusWait        float64
	// MemUtilization and MemWait are the equation (12)/(11) memory
	// measures.
	MemUtilization float64
	MemWait        float64
	// Iterations is the fixed-point iteration count (Section 3.2).
	Iterations int
}

// Options tunes the MVA solution; the zero value uses the paper's scheme
// (plain substitution from zero waits, tight tolerance).
type Options struct {
	// Tolerance for the fixed point; 0 means 1e-10.
	Tolerance float64
	// MaxIterations bounds the iteration count; 0 means 10000.
	MaxIterations int

	// Ablation switches (see the bench harness): disable individual
	// submodels to quantify their contribution.
	NoCacheInterference  bool
	NoMemoryInterference bool
	NoResidualLife       bool
	ExponentialBus       bool
	NoArrivalCorrection  bool
	// SplitTransactionBus models a split-transaction bus: memory-supplied
	// reads release the bus during the memory latency.
	SplitTransactionBus bool
}

func (o Options) internal() mva.Options {
	return mva.Options{
		Tol:                  o.Tolerance,
		MaxIter:              o.MaxIterations,
		NoCacheInterference:  o.NoCacheInterference,
		NoMemoryInterference: o.NoMemoryInterference,
		NoResidualLife:       o.NoResidualLife,
		ExponentialBus:       o.ExponentialBus,
		NoArrivalCorrection:  o.NoArrivalCorrection,
		SplitTransactionBus:  o.SplitTransactionBus,
	}
}

func model(p Protocol, w Workload, t Timing) (mva.Model, error) {
	if err := p.validate(); err != nil {
		return mva.Model{}, err
	}
	return mva.Model{
		Workload:         w.internal(),
		Timing:           t.internal(),
		Mods:             p.inner.Mods,
		RawParams:        w.FixedParams,
		WriteThroughBase: p.inner.WriteThroughBase,
	}, nil
}

// Solve runs the paper's MVA model for protocol p, workload w, and n
// processors with default timing and options.
func Solve(p Protocol, w Workload, n int) (Result, error) {
	return SolveWith(p, w, Timing{}, n, Options{})
}

// SolveWith runs the MVA model with explicit timing and options.
func SolveWith(p Protocol, w Workload, t Timing, n int, opts Options) (Result, error) {
	m, err := model(p, w, t)
	if err != nil {
		return Result{}, err
	}
	r, err := m.Solve(n, opts.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{
		N:               r.N,
		Speedup:         r.Speedup,
		ProcessingPower: r.ProcessingPower,
		R:               r.R,
		BusUtilization:  r.UBus,
		BusWait:         r.WBus,
		MemUtilization:  r.UMem,
		MemWait:         r.WMem,
		Iterations:      r.Iterations,
	}, nil
}

// Sweep solves the MVA model for each system size in ns.
func Sweep(p Protocol, w Workload, ns []int) ([]Result, error) {
	out := make([]Result, 0, len(ns))
	for _, n := range ns {
		r, err := Solve(p, w, n)
		if err != nil {
			return nil, fmt.Errorf("snoopmva: sweep at N=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Compare solves several protocols at the same workload and system size,
// returned in input order.
func Compare(ps []Protocol, w Workload, n int) ([]Result, error) {
	out := make([]Result, 0, len(ps))
	for _, p := range ps {
		r, err := Solve(p, w, n)
		if err != nil {
			return nil, fmt.Errorf("snoopmva: %v: %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// DetailedResult holds the GTPN (detailed-model) outputs.
type DetailedResult struct {
	N              int
	Speedup        float64
	R              float64
	BusUtilization float64
	// States is the reachability-graph size — the quantity that limits
	// this model to small systems.
	States int
}

// SolveDetailed runs the Generalized Timed Petri Net model — the paper's
// expensive comparator. Cost grows quickly with n; sizes beyond ~10 are
// rejected by maxStates.
func SolveDetailed(p Protocol, w Workload, n int) (DetailedResult, error) {
	if err := p.validate(); err != nil {
		return DetailedResult{}, err
	}
	g, err := gtpnmodel.Solve(gtpnmodel.Config{
		Workload:         w.internal(),
		Mods:             p.inner.Mods,
		RawParams:        w.FixedParams,
		WriteThroughBase: p.inner.WriteThroughBase,
		N:                n,
	}, petri.Options{})
	if err != nil {
		return DetailedResult{}, err
	}
	return DetailedResult{
		N: g.N, Speedup: g.Speedup, R: g.R, BusUtilization: g.UBus, States: g.States,
	}, nil
}

// SimOptions tunes the detailed simulator.
type SimOptions struct {
	// Seed fixes the random streams (0 means 1).
	Seed uint64
	// WarmupCycles and MeasureCycles size the run; zero values use the
	// simulator defaults (30k / 300k), negative warmup means none.
	WarmupCycles  int64
	MeasureCycles int64
	// AdaptiveThreshold enables RWB-style competitive update/invalidate
	// switching for update protocols: a cache that absorbs this many
	// consecutive updates of a block without referencing it drops its
	// copy. Zero disables.
	AdaptiveThreshold int
	// SplitTransactions models a split-transaction bus in the simulator.
	SplitTransactions bool
}

// SimResult holds the simulator's outputs.
type SimResult struct {
	N              int
	Speedup        float64
	SpeedupLow     float64 // 95% confidence interval
	SpeedupHigh    float64
	R              float64
	BusUtilization float64
	MemUtilization float64
	// Emergent workload quantities (parameters to the models, measured
	// outcomes here).
	ObservedAmod    float64
	ObservedCsupply float64
	// Per-class response times in cycles (private, shared read-only,
	// shared-writable): mean and 95th percentile.
	MeanResponse [3]float64
	P95Response  [3]float64
}

// Simulate runs the cycle-level simulator: real protocol state machines
// over identified blocks, FCFS bus, interleaved memory.
func Simulate(p Protocol, w Workload, n int, opts SimOptions) (SimResult, error) {
	if err := p.validate(); err != nil {
		return SimResult{}, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	r, err := cachesim.Run(cachesim.Config{
		N:                 n,
		Protocol:          p.inner,
		Workload:          w.internal(),
		RawParams:         w.FixedParams,
		Seed:              seed,
		WarmupCycles:      opts.WarmupCycles,
		MeasureCycles:     opts.MeasureCycles,
		AdaptiveThreshold: opts.AdaptiveThreshold,
		SplitTransactions: opts.SplitTransactions,
	})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		N:               r.N,
		Speedup:         r.Speedup,
		SpeedupLow:      r.SpeedupCI.Lo(),
		SpeedupHigh:     r.SpeedupCI.Hi(),
		R:               r.R,
		BusUtilization:  r.UBus,
		MemUtilization:  r.UMem,
		ObservedAmod:    r.Observed.Amod,
		ObservedCsupply: r.Observed.Csupply,
		MeanResponse:    r.MeanResponse,
		P95Response:     r.P95Response,
	}, nil
}

// Experiments lists the IDs of the paper-reproduction experiments
// (DESIGN.md §5).
func Experiments() []string {
	all := exp.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// RunExperiment regenerates one paper artifact (table or figure) by ID and
// writes its report to w. gtpnMaxN bounds the detailed comparator (<=0
// disables it; 6 is a good default), simCycles sizes the simulator columns
// (<0 disables).
func RunExperiment(id string, w io.Writer, gtpnMaxN int, simCycles int64) error {
	e, ok := exp.ByID(id)
	if !ok {
		return fmt.Errorf("snoopmva: unknown experiment %q (have %v)", id, Experiments())
	}
	if gtpnMaxN <= 0 {
		gtpnMaxN = -1
	}
	rep, err := e.Run(exp.RunConfig{GTPNMaxN: gtpnMaxN, SimCycles: simCycles})
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}
