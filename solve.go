package snoopmva

import (
	"context"
	"fmt"
	"io"

	"snoopmva/internal/exp"
	"snoopmva/internal/mva"
)

// Result holds the MVA model's outputs for one configuration.
type Result struct {
	// N is the number of processors solved for.
	N int
	// Speedup is N·(τ+T_supply)/R, the paper's Section 4 metric.
	Speedup float64
	// ProcessingPower is the sum of processor utilizations, N·τ/R.
	ProcessingPower float64
	// R is the mean total time between memory requests (equation 1).
	R float64
	// BusUtilization and BusWait are the equation (7)/(5) bus measures.
	BusUtilization float64
	BusWait        float64
	// MemUtilization and MemWait are the equation (12)/(11) memory
	// measures.
	MemUtilization float64
	MemWait        float64
	// Iterations is the fixed-point iteration count (Section 3.2).
	Iterations int
}

// Options tunes the MVA solution; the zero value uses the paper's scheme
// (plain substitution from zero waits, tight tolerance).
type Options struct {
	// Tolerance for the fixed point; 0 means 1e-10.
	Tolerance float64
	// MaxIterations bounds the iteration count; 0 means 10000.
	MaxIterations int

	// Ablation switches (see the bench harness): disable individual
	// submodels to quantify their contribution.
	NoCacheInterference  bool
	NoMemoryInterference bool
	NoResidualLife       bool
	ExponentialBus       bool
	NoArrivalCorrection  bool
	// SplitTransactionBus models a split-transaction bus: memory-supplied
	// reads release the bus during the memory latency.
	SplitTransactionBus bool
}

func (o Options) internal() mva.Options {
	return mva.Options{
		Tol:                  o.Tolerance,
		MaxIter:              o.MaxIterations,
		NoCacheInterference:  o.NoCacheInterference,
		NoMemoryInterference: o.NoMemoryInterference,
		NoResidualLife:       o.NoResidualLife,
		ExponentialBus:       o.ExponentialBus,
		NoArrivalCorrection:  o.NoArrivalCorrection,
		SplitTransactionBus:  o.SplitTransactionBus,
	}
}

func model(p Protocol, w Workload, t Timing) (mva.Model, error) {
	if err := p.validate(); err != nil {
		return mva.Model{}, err
	}
	return mva.Model{
		Workload:         w.internal(),
		Timing:           t.internal(),
		Mods:             p.inner.Mods,
		RawParams:        w.FixedParams,
		WriteThroughBase: p.inner.WriteThroughBase,
	}, nil
}

// Solve runs the paper's MVA model for protocol p, workload w, and n
// processors with default timing and options.
func Solve(p Protocol, w Workload, n int) (Result, error) {
	return SolveWithContext(context.Background(), p, w, Timing{}, n, Options{})
}

// SolveWith runs the MVA model with explicit timing and options.
func SolveWith(p Protocol, w Workload, t Timing, n int, opts Options) (Result, error) {
	return SolveWithContext(context.Background(), p, w, t, n, opts)
}

// Sweep solves the MVA model for each system size in ns.
func Sweep(p Protocol, w Workload, ns []int) ([]Result, error) {
	return SweepContext(context.Background(), p, w, ns)
}

// SolveInput is one configuration in a SolveMany batch.
type SolveInput struct {
	Protocol Protocol
	Workload Workload
	// Timing may be the zero value, meaning the paper defaults (exactly as
	// in SolveWith).
	Timing Timing
	N      int
	// Options may be the zero value, meaning the paper's scheme.
	Options Options
}

// SolveMany solves a batch of configurations, amortizing derivation and
// solver-scratch acquisition across points that share a (protocol,
// workload, timing, options) configuration — the interactive
// design-space-sweep shape the paper's Section 4 argues the MVA
// technique makes cheap. Results are returned in input order and are
// bitwise identical to a sequential loop of Solve/SolveWith calls over
// the same inputs (every point is cold-started; only setup is shared).
func SolveMany(inputs []SolveInput) ([]Result, error) {
	return SolveManyContext(context.Background(), inputs)
}

// SolveManyContext is SolveMany with cancellation. The batch is
// fail-fast: the first point whose solve fails (or is canceled) aborts
// the batch, and the error names the failing system size.
func SolveManyContext(ctx context.Context, inputs []SolveInput) (out []Result, err error) {
	defer guard(&err)
	out = make([]Result, len(inputs))
	idxs := make([]int, len(inputs))
	for i := range inputs {
		idxs[i] = i
	}
	if serr := solveBatch(ctx, inputs, idxs, out); serr != nil {
		return nil, serr
	}
	return out, nil
}

// batchConfig is the amortization unit of a SolveMany batch: points
// whose derived model and solver options are identical share one
// grouped solve (and therefore one derivation and one pooled scratch).
type batchConfig struct {
	model mva.Model
	opts  mva.Options
}

// solveBatch solves inputs[i] for each i in idxs, writing each result to
// out[i]. Points are grouped by identical configuration in first-seen
// order and each group runs through one mva batch solve, so results are
// deterministic and bitwise identical to per-point cold solves.
func solveBatch(ctx context.Context, inputs []SolveInput, idxs []int, out []Result) error {
	var order []batchConfig
	groups := make(map[batchConfig][]int)
	for _, i := range idxs {
		in := inputs[i]
		m, err := model(in.Protocol, in.Workload, in.Timing)
		if err != nil {
			return fmt.Errorf("snoopmva: batch solve at index %d: %w", i, err)
		}
		cfg := batchConfig{model: m, opts: in.Options.internal()}
		if _, ok := groups[cfg]; !ok {
			order = append(order, cfg)
		}
		groups[cfg] = append(groups[cfg], i)
	}
	for _, cfg := range order {
		members := groups[cfg]
		ns := make([]int, len(members))
		for j, i := range members {
			ns[j] = inputs[i].N
		}
		rs, err := cfg.model.SolveManyContext(ctx, ns, cfg.opts)
		if err != nil {
			return fmt.Errorf("snoopmva: batch solve: %w", err)
		}
		for j, i := range members {
			out[i] = fromMVA(rs[j])
		}
	}
	return nil
}

// Compare solves several protocols at the same workload and system size,
// returned in input order. Every protocol is attempted; the returned error
// joins the per-protocol failures, each identified by its protocol — the
// same shape CompareParallelContext produces, so errors.Is classification
// works identically through both paths.
func Compare(ps []Protocol, w Workload, n int) (out []Result, err error) {
	defer guard(&err)
	return compareSerial(ps, func(p Protocol) (Result, error) {
		return Solve(p, w, n)
	})
}

// DetailedResult holds the GTPN (detailed-model) outputs.
type DetailedResult struct {
	N              int
	Speedup        float64
	R              float64
	BusUtilization float64
	// States is the reachability-graph size — the quantity that limits
	// this model to small systems.
	States int
}

// SolveDetailed runs the Generalized Timed Petri Net model — the paper's
// expensive comparator. Cost grows quickly with n; sizes beyond ~10 are
// rejected by maxStates.
func SolveDetailed(p Protocol, w Workload, n int) (DetailedResult, error) {
	return SolveDetailedContext(context.Background(), p, w, n)
}

// SimOptions tunes the detailed simulator.
type SimOptions struct {
	// Seed fixes the random streams (0 means 1).
	Seed uint64
	// WarmupCycles and MeasureCycles size the run; zero values use the
	// simulator defaults (30k / 300k), negative warmup means none.
	WarmupCycles  int64
	MeasureCycles int64
	// AdaptiveThreshold enables RWB-style competitive update/invalidate
	// switching for update protocols: a cache that absorbs this many
	// consecutive updates of a block without referencing it drops its
	// copy. Zero disables.
	AdaptiveThreshold int
	// SplitTransactions models a split-transaction bus in the simulator.
	SplitTransactions bool
}

// SimResult holds the simulator's outputs.
type SimResult struct {
	N              int
	Speedup        float64
	SpeedupLow     float64 // 95% confidence interval
	SpeedupHigh    float64
	R              float64
	BusUtilization float64
	MemUtilization float64
	// Emergent workload quantities (parameters to the models, measured
	// outcomes here).
	ObservedAmod    float64
	ObservedCsupply float64
	// Per-class response times in cycles (private, shared read-only,
	// shared-writable): mean and 95th percentile.
	MeanResponse [3]float64
	P95Response  [3]float64
}

// Simulate runs the cycle-level simulator: real protocol state machines
// over identified blocks, FCFS bus, interleaved memory.
func Simulate(p Protocol, w Workload, n int, opts SimOptions) (SimResult, error) {
	return SimulateContext(context.Background(), p, w, n, opts)
}

// Experiments lists the IDs of the paper-reproduction experiments
// (DESIGN.md §5).
func Experiments() []string {
	all := exp.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// RunExperiment regenerates one paper artifact (table or figure) by ID and
// writes its report to w. gtpnMaxN bounds the detailed comparator (<=0
// disables it; 6 is a good default), simCycles sizes the simulator columns
// (<0 disables).
func RunExperiment(id string, w io.Writer, gtpnMaxN int, simCycles int64) error {
	return RunExperimentContext(context.Background(), id, w, gtpnMaxN, simCycles)
}
