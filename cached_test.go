package snoopmva

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snoopmva/internal/faultinject"
)

func TestCachedSolveBitwiseMatchesUncached(t *testing.T) {
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing5)
	for _, p := range []Protocol{WriteOnce(), Illinois(), Dragon()} {
		for _, n := range []int{1, 4, 10, 100} {
			direct, err := Solve(p, w, n)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := cs.Solve(p, w, n)
			if err != nil {
				t.Fatal(err)
			}
			hit, err := cs.Solve(p, w, n)
			if err != nil {
				t.Fatal(err)
			}
			// Result is a plain value struct of floats and ints; the cached
			// value IS the computed value, so equality must be exact
			// (struct comparison is deliberate here).
			if cold != direct || hit != direct {
				t.Errorf("%v N=%d: cached result differs: direct %+v, cold %+v, hit %+v",
					p, n, direct, cold, hit)
			}
		}
	}
	s := cs.Stats()
	if s.Misses != 12 || s.Hits != 12 {
		t.Errorf("stats = %+v, want 12 misses + 12 hits", s)
	}
}

func TestCachedSolverKeyDiscrimination(t *testing.T) {
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing5)

	// Same protocol constructed two ways must share an entry.
	if _, err := cs.Solve(Illinois(), w, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Solve(WithMods(1, 2, 3), w, 8); err != nil {
		t.Fatal(err)
	}
	if s := cs.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("preset vs WithMods did not share an entry: %+v", s)
	}

	// The zero Timing means the paper defaults: must share with
	// DefaultTiming().
	if _, err := cs.SolveWith(Illinois(), w, DefaultTiming(), 8, Options{}); err != nil {
		t.Fatal(err)
	}
	if s := cs.Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Errorf("zero Timing vs DefaultTiming did not share an entry: %+v", s)
	}

	// Any changed input must be a distinct entry.
	w2 := w
	w2.Tau += 0.5
	if _, err := cs.Solve(Illinois(), w2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Solve(Illinois(), w, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.SolveWith(Illinois(), w, Timing{}, 8, Options{SplitTransactionBus: true}); err != nil {
		t.Fatal(err)
	}
	if s := cs.Stats(); s.Misses != 4 {
		t.Errorf("changed inputs did not miss: %+v", s)
	}
}

func TestCachedSolverStorm(t *testing.T) {
	// Acceptance criterion: a 64-goroutine identical-key storm performs
	// exactly one underlying solve, asserted via the coalesce counters and
	// an MVAEnter fault-injection probe counting real solver entries.
	const storm = 64
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing20)

	var solves atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		MVAEnter: func(int) { solves.Add(1) },
	})
	defer restore()

	var ready, done sync.WaitGroup
	ready.Add(storm)
	done.Add(storm)
	release := make(chan struct{})
	results := make([]Result, storm)
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		go func(i int) {
			defer done.Done()
			ready.Done()
			<-release
			results[i], errs[i] = cs.Solve(Dragon(), w, 16)
		}(i)
	}
	ready.Wait()
	close(release)
	done.Wait()

	if n := solves.Load(); n != 1 {
		t.Errorf("storm entered the MVA solver %d times, want exactly 1", n)
	}
	for i := 1; i < storm; i++ {
		if errs[i] != nil || results[i] != results[0] {
			t.Fatalf("goroutine %d: %+v, %v", i, results[i], errs[i])
		}
	}
	s := cs.Stats()
	if s.Misses != 1 {
		t.Errorf("stats.Misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != storm-1 {
		t.Errorf("hits %d + coalesced %d should account for the other %d callers",
			s.Hits, s.Coalesced, storm-1)
	}
}

func TestCachedReSolveSpeedup(t *testing.T) {
	// Acceptance criterion: a cached re-solve is at least 100× faster than
	// the cold solve. Measured on SolveBest with a GTPN stage — the
	// regime the cache exists for (the paper's expensive comparator versus
	// a map lookup). Each side is timed over several iterations to keep
	// scheduler noise out of the ratio.
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing5)
	b := Budget{SimCycles: -1} // GTPN with default state budget, no simulator

	start := time.Now()
	cold, err := cs.SolveBest(context.Background(), WriteOnce(), w, 4, b)
	coldTime := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Method != MethodGTPN {
		t.Fatalf("cold solve used %v, want GTPN", cold.Method)
	}

	const reps = 100
	start = time.Now()
	for i := 0; i < reps; i++ {
		hit, err := cs.SolveBest(context.Background(), WriteOnce(), w, 4, b)
		if err != nil {
			t.Fatal(err)
		}
		if hit.Speedup != cold.Speedup || hit.Method != cold.Method {
			t.Fatalf("cache hit returned a different result: %+v vs %+v", hit, cold)
		}
	}
	hitTime := time.Since(start) / reps

	if hitTime <= 0 {
		hitTime = 1 // sub-resolution hits trivially satisfy the bound
	}
	ratio := float64(coldTime) / float64(hitTime)
	t.Logf("cold %v, hit %v, ratio %.0f×", coldTime, hitTime, ratio)
	if ratio < 100 {
		t.Errorf("cached re-solve only %.1f× faster than cold (cold %v, hit %v), want ≥ 100×",
			ratio, coldTime, hitTime)
	}
	if s := cs.Stats(); s.Misses != 1 || s.Hits != reps {
		t.Errorf("stats = %+v", s)
	}
}

func TestCachedSolveBestClonesDetailPointers(t *testing.T) {
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing5)
	b := Budget{MaxStates: -1, SimCycles: -1} // MVA only: cheap
	first, err := cs.SolveBest(context.Background(), WriteOnce(), w, 8, b)
	if err != nil {
		t.Fatal(err)
	}
	if first.MVA == nil {
		t.Fatal("MVA-only SolveBest returned no MVA detail")
	}
	first.MVA.Speedup = -1 // caller scribbles on its copy
	second, err := cs.SolveBest(context.Background(), WriteOnce(), w, 8, b)
	if err != nil {
		t.Fatal(err)
	}
	if second.MVA.Speedup == -1 {
		t.Fatal("mutating a returned BestResult poisoned the cache")
	}
	if second.MVA == first.MVA {
		t.Fatal("cache handed two callers the same detail pointer")
	}
}

func TestCachedSolverErrorsNotCachedAndClassified(t *testing.T) {
	cs := NewCachedSolver(0)
	bad := AppendixA(Sharing5)
	bad.PPrivate = 2 // invalid partition
	for i := 0; i < 2; i++ {
		if _, err := cs.Solve(WriteOnce(), bad, 4); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("attempt %d: err = %v, want ErrInvalidInput", i, err)
		}
	}
	if s := cs.Stats(); s.Entries != 0 || s.Misses != 2 {
		t.Errorf("failed solves were cached: %+v", s)
	}

	// Cancellation surfaces as ErrCanceled and is not cached either. The
	// solver polls ctx every few dozen iterations, so this needs a
	// configuration that iterates long enough to observe it — Sharing20
	// near saturation runs ~1000 iterations.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	heavy := AppendixA(Sharing20)
	if _, err := cs.SolveContext(ctx, WriteOnce(), heavy, 100); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled solve: %v", err)
	}
	if got, err := cs.SolveContext(context.Background(), WriteOnce(), heavy, 100); err != nil || got.N != 100 {
		t.Fatalf("solve after canceled flight: %+v, %v", got, err)
	}
}

func TestCachedSweepsMatchColdSolves(t *testing.T) {
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing20)
	ns := []int{1, 2, 4, 8, 16, 32}
	seq, err := cs.SweepContext(context.Background(), Illinois(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cs.SweepParallelContext(context.Background(), Illinois(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		cold, err := Solve(Illinois(), w, n)
		if err != nil {
			t.Fatal(err)
		}
		// Cached sweeps use canonical cold-start entries: bitwise equality
		// with a per-size cold solve is the contract.
		if seq[i] != cold {
			t.Errorf("N=%d: cached sweep %+v != cold solve %+v", n, seq[i], cold)
		}
		if par[i] != cold {
			t.Errorf("N=%d: cached parallel sweep %+v != cold solve %+v", n, par[i], cold)
		}
	}
	// The second sweep must be all hits.
	s := cs.Stats()
	if s.Misses != uint64(len(ns)) {
		t.Errorf("two sweeps over the same sizes ran %d solves, want %d", s.Misses, len(ns))
	}
}

func TestCachedCompareJoinsErrors(t *testing.T) {
	cs := NewCachedSolver(0)
	w := AppendixA(Sharing5)
	good, err := cs.Compare([]Protocol{WriteOnce(), Illinois()}, w, 8)
	if err != nil || len(good) != 2 {
		t.Fatalf("Compare: %v, %v", good, err)
	}
	_, err = cs.Compare([]Protocol{WriteOnce(), WithMods(9)}, w, 8)
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("Compare with invalid protocol: %v", err)
	}
}

func TestCampaignWithCacheMatchesWithout(t *testing.T) {
	w := AppendixA(Sharing5)
	var points []CampaignPoint
	for _, p := range []Protocol{WriteOnce(), Illinois()} {
		for _, n := range []int{1, 2, 4, 8} {
			points = append(points, CampaignPoint{
				Protocol: p, Workload: w, N: n,
				Budget: Budget{MaxStates: -1, SimCycles: -1},
			})
		}
	}
	plain, err := RunCampaign(context.Background(), CampaignSpec{Points: points, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedSolver(0)
	cached, err := RunCampaign(context.Background(), CampaignSpec{Points: points, Workers: 2, Cache: cs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Results {
		a, b := plain.Results[i], cached.Results[i]
		if a.Speedup != b.Speedup || a.R != b.R || a.Method != b.Method {
			t.Errorf("point %d: cached campaign differs: %+v vs %+v", i, b, a)
		}
	}
	if s := cs.Stats(); s.Misses != uint64(len(points)) {
		t.Errorf("first cached campaign: %+v, want %d misses", s, len(points))
	}

	// A re-run of the same grid through the same cache (fresh journal so
	// resume semantics are out of the picture) must be pure hits.
	journal := filepath.Join(t.TempDir(), "c.jsonl")
	rerun, err := RunCampaign(context.Background(), CampaignSpec{
		Points: points, Workers: 2, Cache: cs, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Computed != len(points) {
		t.Fatalf("rerun computed %d points, want %d", rerun.Computed, len(points))
	}
	if s := cs.Stats(); s.Misses != uint64(len(points)) || s.Hits < uint64(len(points)) {
		t.Errorf("cached rerun was not served from the cache: %+v", s)
	}
}
