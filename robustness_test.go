package snoopmva

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/mva"
)

// Acceptance: canceling mid-run stops the GTPN solve (N=8, ~seconds of
// reachability + embedded-chain work) within 100ms of the cancel.
func TestSolveDetailedContextCancelsWithin100ms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		_, err := SolveDetailedContext(ctx, WriteOnce(), AppendixA(Sharing5), 8)
		done <- outcome{err, time.Since(start)}
	}()

	// Let the solve get well into its work, then cancel.
	time.Sleep(100 * time.Millisecond)
	cancel()
	canceledAt := time.Now()

	select {
	case o := <-done:
		if time.Since(canceledAt) > 100*time.Millisecond {
			t.Errorf("solve returned %v after cancel, want <= 100ms", time.Since(canceledAt))
		}
		if !errors.Is(o.err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled (solve ran %v)", o.err, o.elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("solve did not return within 2s of cancel")
	}
}

// Acceptance: canceling stops a >= 10M-cycle simulation within 100ms.
func TestSimulateContextCancelsWithin100ms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := SimulateContext(ctx, WriteOnce(), AppendixA(Sharing5), 16,
			SimOptions{MeasureCycles: 10_000_000})
		done <- err
	}()

	time.Sleep(100 * time.Millisecond)
	cancel()
	canceledAt := time.Now()

	select {
	case err := <-done:
		if time.Since(canceledAt) > 100*time.Millisecond {
			t.Errorf("simulation returned %v after cancel, want <= 100ms", time.Since(canceledAt))
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("simulation did not return within 2s of cancel")
	}
}

func TestSolveContextHonorsPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// N large enough that the fixed point passes at least one 64-iteration
	// cancellation checkpoint before converging is not guaranteed, so use a
	// stall hook to hold it in the loop.
	restore := faultinject.Activate(&faultinject.Set{
		MVAStall: func(int) bool { return true },
	})
	defer restore()
	_, err := SolveContext(ctx, WriteOnce(), AppendixA(Sharing5), 10)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// Acceptance: under an injected state-explosion fault, SolveBest reports a
// degraded MVA result with the GTPN failure recorded in FallbackReason.
func TestSolveBestDegradesOnStateExplosion(t *testing.T) {
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(states int) bool { return states > 100 },
	})
	defer restore()

	best, err := SolveBest(context.Background(), WriteOnce(), AppendixA(Sharing5), 8,
		Budget{SimCycles: -1}) // skip the simulator rung: GTPN -> MVA directly
	if err != nil {
		t.Fatal(err)
	}
	if best.Method != MethodMVA {
		t.Errorf("Method = %q, want %q", best.Method, MethodMVA)
	}
	if !best.Degraded {
		t.Error("Degraded = false, want true")
	}
	if !strings.Contains(best.FallbackReason, "gtpn") || !strings.Contains(best.FallbackReason, "state") {
		t.Errorf("FallbackReason = %q, want the gtpn state-explosion recorded", best.FallbackReason)
	}
	if best.MVA == nil || best.GTPN != nil || best.Sim != nil {
		t.Errorf("want only the MVA payload populated, got MVA=%v GTPN=%v Sim=%v",
			best.MVA != nil, best.GTPN != nil, best.Sim != nil)
	}
	if best.Speedup <= 0 || best.Speedup != best.MVA.Speedup {
		t.Errorf("headline speedup %v does not match MVA payload %v", best.Speedup, best.MVA.Speedup)
	}
}

func TestSolveBestPrefersGTPNWhenItFits(t *testing.T) {
	best, err := SolveBest(context.Background(), WriteOnce(), AppendixA(Sharing5), 3,
		Budget{SimCycles: -1})
	if err != nil {
		t.Fatal(err)
	}
	if best.Method != MethodGTPN || best.Degraded || best.FallbackReason != "" {
		t.Errorf("got method=%q degraded=%v reason=%q, want a clean GTPN result",
			best.Method, best.Degraded, best.FallbackReason)
	}
	if best.GTPN == nil || best.GTPN.States == 0 {
		t.Error("GTPN payload missing")
	}
}

func TestSolveBestFallsBackToSimulation(t *testing.T) {
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(states int) bool { return states > 100 },
	})
	defer restore()

	best, err := SolveBest(context.Background(), WriteOnce(), AppendixA(Sharing5), 4,
		Budget{SimCycles: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if best.Method != MethodSimulation || !best.Degraded {
		t.Errorf("got method=%q degraded=%v, want degraded simulation", best.Method, best.Degraded)
	}
	if best.Sim == nil {
		t.Fatal("Sim payload missing")
	}
}

func TestSolveBestInvalidInputDoesNotDegrade(t *testing.T) {
	w := AppendixA(Sharing5)
	w.HPrivate = 2 // out of range
	_, err := SolveBest(context.Background(), WriteOnce(), w, 8, Budget{})
	if !errors.Is(err, ErrInvalidInput) {
		t.Errorf("err = %v, want ErrInvalidInput", err)
	}
}

func TestSolveBestRejectsNegativeTimeouts(t *testing.T) {
	w := AppendixA(Sharing5)
	if _, err := SolveBest(context.Background(), WriteOnce(), w, 4,
		Budget{GTPNTimeout: -time.Second}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative GTPNTimeout: err = %v, want ErrInvalidInput", err)
	}
	if _, err := SolveBest(context.Background(), WriteOnce(), w, 4,
		Budget{SimTimeout: -time.Nanosecond}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative SimTimeout: err = %v, want ErrInvalidInput", err)
	}
}

// Double degradation: when both the GTPN and the simulator stages fail,
// the MVA result's FallbackReason must name both failed stages, in ladder
// order, so provenance survives two rungs of degradation.
func TestSolveBestDoubleDegradationProvenance(t *testing.T) {
	simFault := errors.New("injected simulator fault")
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(states int) bool { return true },
		SimFault:     func(cycle int64) error { return simFault },
	})
	defer restore()

	best, err := SolveBest(context.Background(), WriteOnce(), AppendixA(Sharing5), 8,
		Budget{SimCycles: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if best.Method != MethodMVA || !best.Degraded {
		t.Fatalf("got method=%q degraded=%v, want degraded MVA", best.Method, best.Degraded)
	}
	reason := best.FallbackReason
	gtpnAt := strings.Index(reason, "gtpn:")
	simAt := strings.Index(reason, "simulation:")
	if gtpnAt < 0 || simAt < 0 {
		t.Fatalf("FallbackReason = %q, want both failed stages named", reason)
	}
	if gtpnAt > simAt {
		t.Errorf("FallbackReason = %q, want gtpn before simulation (ladder order)", reason)
	}
	if !strings.Contains(reason, "state") || !strings.Contains(reason, "injected simulator fault") {
		t.Errorf("FallbackReason = %q, want each stage's cause preserved", reason)
	}
}

func TestSolveBestCanceledContextAbortsLadder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(int) bool { return true },
	})
	defer restore()
	_, err := SolveBest(ctx, WriteOnce(), AppendixA(Sharing5), 8, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled (cancel must not degrade)", err)
	}
}

// Taxonomy: each failure mode surfaces as its public sentinel.
func TestErrorTaxonomy(t *testing.T) {
	w := AppendixA(Sharing5)

	t.Run("invalid workload", func(t *testing.T) {
		bad := w
		bad.PSw = 0.5 // partition no longer sums to 1
		if _, err := Solve(WriteOnce(), bad, 8); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
	t.Run("invalid protocol", func(t *testing.T) {
		if _, err := Solve(WithMods(9), w, 8); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
	t.Run("invalid system size", func(t *testing.T) {
		if _, err := Solve(WriteOnce(), w, 0); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
	t.Run("diverged", func(t *testing.T) {
		restore := faultinject.Activate(&faultinject.Set{
			MVAPoison: func(iter int) (float64, bool) { return math.NaN(), iter == 3 },
		})
		defer restore()
		_, err := Solve(WriteOnce(), w, 8)
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("err = %v, want ErrDiverged", err)
		}
		var de *mva.DivergenceError
		if !errors.As(err, &de) {
			t.Fatalf("err = %v, want a *mva.DivergenceError carrying the iterate", err)
		}
		if de.Iteration != 3 || de.N != 8 {
			t.Errorf("offending iterate = %+v, want iteration 3 at N=8", de)
		}
	})
	t.Run("no convergence", func(t *testing.T) {
		restore := faultinject.Activate(&faultinject.Set{
			MVAStall: func(int) bool { return true },
		})
		defer restore()
		if _, err := Solve(WriteOnce(), w, 8); !errors.Is(err, ErrNoConvergence) {
			t.Errorf("err = %v, want ErrNoConvergence", err)
		}
	})
	t.Run("state explosion", func(t *testing.T) {
		restore := faultinject.Activate(&faultinject.Set{
			PetriExplode: func(states int) bool { return states > 50 },
		})
		defer restore()
		if _, err := SolveDetailed(WriteOnce(), w, 4); !errors.Is(err, ErrStateExplosion) {
			t.Errorf("err = %v, want ErrStateExplosion", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := SolveDetailedContext(ctx, WriteOnce(), w, 6); !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled", err)
		}
	})
}

func TestGuardRecoversPanicsIntoPanicError(t *testing.T) {
	f := func() (err error) {
		defer guard(&err)
		panic("internal invariant violated (test)")
	}
	err := f()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "internal invariant violated (test)" {
		t.Errorf("Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "robustness_test") {
		t.Errorf("Stack does not point at the panic site:\n%s", pe.Stack)
	}
}

func TestClassifyPassesUnknownAndClassifiedThrough(t *testing.T) {
	plain := errors.New("some downstream failure")
	if got := classify(plain); got != plain {
		t.Errorf("unknown error rewrapped: %v", got)
	}
	once := classify(context.Canceled)
	if !errors.Is(once, ErrCanceled) {
		t.Fatalf("classify(context.Canceled) = %v", once)
	}
	if again := classify(once); again != once {
		t.Errorf("already-classified error rewrapped: %v", again)
	}
	if classify(nil) != nil {
		t.Error("classify(nil) != nil")
	}
}

// The context-less entry points still work unchanged (delegation check).
func TestBackgroundDelegationUnchanged(t *testing.T) {
	r1, err := Solve(Illinois(), AppendixA(Sharing20), 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveContext(context.Background(), Illinois(), AppendixA(Sharing20), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("Solve %+v != SolveContext %+v", r1, r2)
	}
}
