package snoopmva

import (
	"fmt"
	"io"

	"snoopmva/internal/mva"
)

// GroupSpec describes one homogeneous processor group of a heterogeneous
// system: Count processors running Workload under Protocol, all sharing
// one bus and memory with the other groups.
type GroupSpec struct {
	Name     string
	Count    int
	Protocol Protocol
	Workload Workload
}

// GroupResult is one group's slice of a heterogeneous solution.
type GroupResult struct {
	Name    string
	Count   int
	R       float64
	Speedup float64
}

// HeteroResult holds the joint solution of SolveGroups.
type HeteroResult struct {
	PerGroup        []GroupResult
	TotalProcessors int
	Speedup         float64
	ProcessingPower float64
	BusUtilization  float64
	BusWait         float64
	MemUtilization  float64
	Iterations      int
}

// SolveGroups runs the multi-class generalization of the paper's MVA:
// several processor groups with different workloads (and even different
// protocols) share one bus. With a single group it reduces to Solve.
func SolveGroups(groups []GroupSpec) (res HeteroResult, err error) {
	defer guard(&err)
	in := make([]mva.Group, 0, len(groups))
	for i, g := range groups {
		m, err := model(g.Protocol, g.Workload, Timing{})
		if err != nil {
			return HeteroResult{}, fmt.Errorf("snoopmva: group %d: %w", i, err)
		}
		in = append(in, mva.Group{Name: g.Name, Count: g.Count, Model: m})
	}
	r, err := mva.SolveHeterogeneous(in, mva.Options{})
	if err != nil {
		return HeteroResult{}, err
	}
	out := HeteroResult{
		TotalProcessors: r.TotalProcessors,
		Speedup:         r.Speedup,
		ProcessingPower: r.ProcessingPower,
		BusUtilization:  r.UBus,
		BusWait:         r.WBus,
		MemUtilization:  r.UMem,
		Iterations:      r.Iterations,
	}
	for _, g := range r.PerGroup {
		out.PerGroup = append(out.PerGroup, GroupResult{
			Name: g.Name, Count: g.Count, R: g.R, Speedup: g.Speedup,
		})
	}
	return out, nil
}

// Explain solves the configuration and writes an equation-by-equation
// breakdown of the result (derived inputs, each of equations (1)-(13),
// interference submodels) to w — the model made auditable.
func Explain(w io.Writer, p Protocol, wl Workload, n int) (err error) {
	defer guard(&err)
	m, err := model(p, wl, Timing{})
	if err != nil {
		return err
	}
	res, err := m.Solve(n, mva.Options{})
	if err != nil {
		return err
	}
	return mva.Explain(w, res)
}
