package snoopmva

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"snoopmva/internal/faultinject"
)

// TestSentinelsAcrossPublicEntryPoints asserts that every public
// error-returning entry point participates in the error taxonomy: its
// failure paths — invalid input, a faultinject-forced divergence, and
// cancellation where the entry point accepts a context — yield errors that
// errors.Is can classify against the package sentinels.
func TestSentinelsAcrossPublicEntryPoints(t *testing.T) {
	good := AppendixA(Sharing5)
	bad := good
	bad.HPrivate = 2 // probability outside [0,1]

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	// poison forces the MVA fixed point to produce a NaN iterate on its
	// second iteration; every MVA-backed entry point must surface that as
	// ErrDiverged.
	poison := func() func() {
		return faultinject.Activate(&faultinject.Set{
			MVAPoison: func(iter int) (float64, bool) { return math.NaN(), iter == 2 },
		})
	}

	// stall suppresses MVA convergence so the fixed point is still running
	// when it reaches its periodic cancellation checkpoint; without it a
	// small model converges before ever observing the canceled context.
	stall := func() func() {
		return faultinject.Activate(&faultinject.Set{
			MVAStall: func(int) bool { return true },
		})
	}

	cases := []struct {
		name  string
		setup func() func() // optional fault hook; returns restore
		call  func() error
		want  error
	}{
		{"Solve invalid size", nil,
			func() error { _, err := Solve(WriteOnce(), good, 0); return err }, ErrInvalidInput},
		{"Solve invalid workload", nil,
			func() error { _, err := Solve(WriteOnce(), bad, 4); return err }, ErrInvalidInput},
		{"Solve diverged", poison,
			func() error { _, err := Solve(WriteOnce(), good, 4); return err }, ErrDiverged},
		{"SolveWith invalid size", nil,
			func() error {
				_, err := SolveWith(WriteOnce(), good, DefaultTiming(), 0, Options{})
				return err
			}, ErrInvalidInput},
		{"SolveWith diverged", poison,
			func() error { _, err := SolveWith(WriteOnce(), good, DefaultTiming(), 4, Options{}); return err }, ErrDiverged},
		{"SolveContext canceled", stall,
			func() error { _, err := SolveContext(canceled, WriteOnce(), good, 4); return err }, ErrCanceled},
		{"SolveWithContext canceled", stall,
			func() error {
				_, err := SolveWithContext(canceled, WriteOnce(), good, DefaultTiming(), 4, Options{})
				return err
			}, ErrCanceled},
		{"Sweep invalid size", nil,
			func() error { _, err := Sweep(WriteOnce(), good, []int{2, 0}); return err }, ErrInvalidInput},
		{"Sweep diverged", poison,
			func() error { _, err := Sweep(WriteOnce(), good, []int{2, 4}); return err }, ErrDiverged},
		{"SweepContext canceled", stall,
			func() error { _, err := SweepContext(canceled, WriteOnce(), good, []int{2, 4}); return err }, ErrCanceled},
		{"SweepParallel invalid size", nil,
			func() error { _, err := SweepParallel(WriteOnce(), good, []int{0}); return err }, ErrInvalidInput},
		{"SweepParallel diverged", poison,
			func() error { _, err := SweepParallel(WriteOnce(), good, []int{2, 4}); return err }, ErrDiverged},
		{"Compare invalid workload", nil,
			func() error { _, err := Compare([]Protocol{WriteOnce()}, bad, 4); return err }, ErrInvalidInput},
		{"CompareParallel invalid workload", nil,
			func() error { _, err := CompareParallel([]Protocol{WriteOnce()}, bad, 4); return err }, ErrInvalidInput},
		{"CompareParallel diverged", poison,
			func() error { _, err := CompareParallel([]Protocol{WriteOnce(), Illinois()}, good, 4); return err }, ErrDiverged},
		{"SolveDetailed invalid size", nil,
			func() error { _, err := SolveDetailed(WriteOnce(), good, 0); return err }, ErrInvalidInput},
		{"SolveDetailedContext canceled", nil,
			func() error { _, err := SolveDetailedContext(canceled, WriteOnce(), good, 4); return err }, ErrCanceled},
		{"Simulate invalid workload", nil,
			func() error { _, err := Simulate(WriteOnce(), bad, 4, SimOptions{}); return err }, ErrInvalidInput},
		{"SimulateContext canceled", nil,
			func() error { _, err := SimulateContext(canceled, WriteOnce(), good, 4, SimOptions{}); return err }, ErrCanceled},
		{"RunExperiment unknown id", nil,
			func() error { return RunExperiment("no-such-experiment", io.Discard, -1, -1) }, ErrInvalidInput},
		{"RunExperimentContext unknown id", nil,
			func() error { return RunExperimentContext(canceled, "no-such-experiment", io.Discard, -1, -1) }, ErrInvalidInput},
		{"SolveGroups no groups", nil,
			func() error { _, err := SolveGroups(nil); return err }, ErrInvalidInput},
		{"SolveGroups invalid workload", nil,
			func() error {
				_, err := SolveGroups([]GroupSpec{{Count: 2, Protocol: WriteOnce(), Workload: bad}})
				return err
			}, ErrInvalidInput},
		{"Explain invalid size", nil,
			func() error { return Explain(io.Discard, WriteOnce(), good, 0) }, ErrInvalidInput},
		{"Explain diverged", poison,
			func() error { return Explain(io.Discard, WriteOnce(), good, 4) }, ErrDiverged},
		{"SolveHierarchical invalid workload", nil,
			func() error {
				_, err := SolveHierarchical(WriteOnce(), bad, HierarchicalConfig{Clusters: 2, PerCluster: 2})
				return err
			}, ErrInvalidInput},
		{"ClusterShapes invalid workload", nil,
			func() error {
				_, err := ClusterShapes(WriteOnce(), bad, 4, HierarchicalConfig{})
				return err
			}, ErrInvalidInput},
		{"SolveBest invalid size", nil,
			func() error {
				_, err := SolveBest(context.Background(), WriteOnce(), good, 0, Budget{MaxStates: -1, SimCycles: -1})
				return err
			}, ErrInvalidInput},
		{"SolveBest canceled", stall,
			func() error {
				_, err := SolveBest(canceled, WriteOnce(), good, 4, Budget{MaxStates: -1, SimCycles: -1})
				return err
			}, ErrCanceled},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.setup != nil {
				restore := c.setup()
				defer restore()
			}
			err := c.call()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, not classifiable as %v", err, c.want)
			}
		})
	}
}
