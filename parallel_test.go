package snoopmva

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/stats"
)

func TestSweepParallelMatchesSequential(t *testing.T) {
	// The sequential sweep warm-starts each size from the previous one
	// while the parallel sweep solves cold, so the two agree to solver
	// tolerance rather than bitwise (see SweepContext).
	w := AppendixA(Sharing5)
	ns := []int{1, 2, 4, 8, 16, 32, 64, 100}
	seq, err := Sweep(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepParallel(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-7
	for i := range ns {
		if seq[i].N != par[i].N ||
			!stats.ApproxEq(seq[i].Speedup, par[i].Speedup, tol) ||
			!stats.ApproxEq(seq[i].R, par[i].R, tol) ||
			!stats.ApproxEq(seq[i].BusUtilization, par[i].BusUtilization, tol) ||
			!stats.ApproxEq(seq[i].MemUtilization, par[i].MemUtilization, tol) ||
			!stats.ApproxEq(seq[i].BusWait, par[i].BusWait, tol) {
			t.Errorf("N=%d: parallel %+v != sequential %+v", ns[i], par[i], seq[i])
		}
	}
}

func TestSweepParallelPropagatesErrors(t *testing.T) {
	if _, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), []int{4, 0, 8}); err == nil {
		t.Error("invalid N accepted")
	}
	empty, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty sweep: %v, %v", empty, err)
	}
}

func TestSweepParallelStopsSchedulingAfterError(t *testing.T) {
	// An invalid size as the very first element fails immediately (GOMAXPROCS
	// workers may have dequeued a few more by then); the feeder must then stop
	// scheduling, so almost all of the remaining sizes are never solved.
	var entered atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		MVAEnter: func(int) { entered.Add(1) },
	})
	defer restore()

	ns := make([]int, 1000)
	ns[0] = 0 // invalid: fails without iterating
	for i := 1; i < len(ns); i++ {
		ns[i] = 4
	}
	if _, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), ns); err == nil {
		t.Fatal("invalid N accepted")
	}
	// Each scheduled size costs up to 3 solve attempts (the damping
	// ladder). Allow a generous in-flight window; without the feeder
	// short-circuit all 1000 sizes are solved (>= 1000 entries).
	if got := entered.Load(); got > 300 {
		t.Errorf("%d MVA solve attempts after first error; feeder did not short-circuit", got)
	}
}

func TestJoinSweepErrorsIdentifiesEveryFailure(t *testing.T) {
	// The aggregator must name every failed N and keep both causes
	// reachable through errors.Is — not just the lowest-index failure.
	ns := []int{2, 4, 8, 16}
	errs := []error{nil, ErrNoConvergence, nil, ErrDiverged}
	err := joinSweepErrors(ns, errs)
	if err == nil {
		t.Fatal("failures dropped")
	}
	if !errors.Is(err, ErrNoConvergence) || !errors.Is(err, ErrDiverged) {
		t.Fatalf("joined error lost a cause: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"N=4", "N=16"} {
		if !strings.Contains(msg, want) {
			t.Errorf("sweep error does not identify %s: %q", want, msg)
		}
	}
	for _, healthy := range []string{"N=2", "N=8"} {
		if strings.Contains(msg, healthy) {
			t.Errorf("sweep error blames healthy size %s: %q", healthy, msg)
		}
	}
	if joinSweepErrors(ns, make([]error, len(ns))) != nil {
		t.Error("all-nil errors produced a sweep error")
	}
}

func TestSweepParallelReportsConcurrentFailures(t *testing.T) {
	// Every size is invalid, so however many the feeder schedules before
	// short-circuiting, each scheduled failure must surface in the joined
	// error — at minimum the first, which is always scheduled.
	ns := []int{0, -1, -2}
	_, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), ns)
	if err == nil {
		t.Fatal("invalid sizes accepted")
	}
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("classification lost in aggregation: %v", err)
	}
	if !strings.Contains(err.Error(), "N=0") {
		t.Errorf("sweep error does not identify N=0: %q", err.Error())
	}
}

func TestSweepParallelContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var entered atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		MVAEnter: func(int) {
			if entered.Add(1) == 5 {
				cancel()
			}
		},
	})
	defer restore()

	ns := make([]int, 500)
	for i := range ns {
		ns[i] = 4
	}
	_, err := SweepParallelContext(ctx, WriteOnce(), AppendixA(Sharing5), ns)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled sweep: err = %v, want ErrCanceled", err)
	}
	// MVA solves re-enter up to 3 times per size (damping ladder), and up
	// to GOMAXPROCS sizes can be in flight at the cancel; well under the
	// 1500 entries an uncancelled sweep would log.
	if got := entered.Load(); got > 500 {
		t.Errorf("%d solve entries after cancel; feeder did not stop", got)
	}
}

func TestCompareParallelContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareParallelContext(ctx, Protocols(), AppendixA(Sharing5), 2000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled compare: err = %v, want ErrCanceled", err)
	}
}

func TestCompareParallelReportsEveryFailure(t *testing.T) {
	ps := []Protocol{WithMods(9), Illinois(), WithMods(8)}
	_, err := CompareParallel(ps, AppendixA(Sharing5), 4)
	if err == nil {
		t.Fatal("invalid protocols accepted")
	}
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("classification lost: %v", err)
	}
	if n := strings.Count(err.Error(), "invalid modification"); n != 2 {
		t.Errorf("joined error mentions %d of 2 failures: %q", n, err.Error())
	}
}

func TestCompareParallelMatchesSequential(t *testing.T) {
	w := AppendixA(Sharing20)
	ps := Protocols()
	seq, err := Compare(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompareParallel(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if seq[i] != par[i] {
			t.Errorf("%v: parallel %+v != sequential %+v", ps[i], par[i], seq[i])
		}
	}
	if _, err := CompareParallel([]Protocol{WithMods(9)}, w, 4); err == nil {
		t.Error("invalid protocol accepted")
	}
}

// TestSweepParallelFeederCancellationWithBlockedWorkers pins the feeder's
// cancellation path: with every worker parked inside a slow solve (one
// that does not return until released), the feeder is blocked on the
// unbuffered work channel. Cancelling the context must make the feeder
// stop scheduling immediately — via the select on the send — rather than
// handing the pending size to a worker after cancellation. The regression
// this guards: a bare `work <- idx` send parks the feeder with no
// ctx.Done() escape, so one extra solve always started after cancel.
func TestSweepParallelFeederCancellationWithBlockedWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	workers := runtime.GOMAXPROCS(0)
	ns := make([]int, workers+4) // more sizes than workers: the feeder must block on a send
	for i := range ns {
		ns[i] = i + 1
	}

	gate := make(chan struct{})
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		_, err := sweepParallel(ctx, ns, func(ctx context.Context, n int) (Result, error) {
			started.Add(1)
			<-gate // a slow solve that ignores ctx: the worst case for the feeder
			return Result{}, ctx.Err()
		})
		done <- err
	}()

	// Wait until every worker is parked inside a solve; the feeder is then
	// blocked trying to hand over the next size.
	deadline := time.After(10 * time.Second)
	for int(started.Load()) < workers {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d workers started a solve", started.Load(), workers)
		case <-time.After(time.Millisecond):
		}
	}

	cancel()
	// Give a regressed feeder the chance to (wrongly) deliver the pending
	// size once a worker frees up; with the fix it has already exited.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("sweep did not return after cancellation and gate release")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := int(started.Load()); got != workers {
		t.Fatalf("%d solves started, want exactly %d: the feeder scheduled new work after cancellation", got, workers)
	}
}
