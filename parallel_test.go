package snoopmva

import (
	"sync/atomic"
	"testing"

	"snoopmva/internal/faultinject"
)

func TestSweepParallelMatchesSequential(t *testing.T) {
	w := AppendixA(Sharing5)
	ns := []int{1, 2, 4, 8, 16, 32, 64, 100}
	seq, err := Sweep(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepParallel(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if seq[i] != par[i] {
			t.Errorf("N=%d: parallel %+v != sequential %+v", ns[i], par[i], seq[i])
		}
	}
}

func TestSweepParallelPropagatesErrors(t *testing.T) {
	if _, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), []int{4, 0, 8}); err == nil {
		t.Error("invalid N accepted")
	}
	empty, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty sweep: %v, %v", empty, err)
	}
}

func TestSweepParallelStopsSchedulingAfterError(t *testing.T) {
	// An invalid size as the very first element fails immediately (GOMAXPROCS
	// workers may have dequeued a few more by then); the feeder must then stop
	// scheduling, so almost all of the remaining sizes are never solved.
	var entered atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		MVAEnter: func(int) { entered.Add(1) },
	})
	defer restore()

	ns := make([]int, 1000)
	ns[0] = 0 // invalid: fails without iterating
	for i := 1; i < len(ns); i++ {
		ns[i] = 4
	}
	if _, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), ns); err == nil {
		t.Fatal("invalid N accepted")
	}
	// Each scheduled size costs up to 3 solve attempts (the damping
	// ladder). Allow a generous in-flight window; without the feeder
	// short-circuit all 1000 sizes are solved (>= 1000 entries).
	if got := entered.Load(); got > 300 {
		t.Errorf("%d MVA solve attempts after first error; feeder did not short-circuit", got)
	}
}

func TestCompareParallelMatchesSequential(t *testing.T) {
	w := AppendixA(Sharing20)
	ps := Protocols()
	seq, err := Compare(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompareParallel(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if seq[i] != par[i] {
			t.Errorf("%v: parallel %+v != sequential %+v", ps[i], par[i], seq[i])
		}
	}
	if _, err := CompareParallel([]Protocol{WithMods(9)}, w, 4); err == nil {
		t.Error("invalid protocol accepted")
	}
}
