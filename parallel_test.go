package snoopmva

import (
	"testing"
)

func TestSweepParallelMatchesSequential(t *testing.T) {
	w := AppendixA(Sharing5)
	ns := []int{1, 2, 4, 8, 16, 32, 64, 100}
	seq, err := Sweep(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepParallel(WriteOnce(), w, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if seq[i] != par[i] {
			t.Errorf("N=%d: parallel %+v != sequential %+v", ns[i], par[i], seq[i])
		}
	}
}

func TestSweepParallelPropagatesErrors(t *testing.T) {
	if _, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), []int{4, 0, 8}); err == nil {
		t.Error("invalid N accepted")
	}
	empty, err := SweepParallel(WriteOnce(), AppendixA(Sharing5), nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty sweep: %v, %v", empty, err)
	}
}

func TestCompareParallelMatchesSequential(t *testing.T) {
	w := AppendixA(Sharing20)
	ps := Protocols()
	seq, err := Compare(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompareParallel(ps, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if seq[i] != par[i] {
			t.Errorf("%v: parallel %+v != sequential %+v", ps[i], par[i], seq[i])
		}
	}
	if _, err := CompareParallel([]Protocol{WithMods(9)}, w, 4); err == nil {
		t.Error("invalid protocol accepted")
	}
}
