module snoopmva

go 1.22
