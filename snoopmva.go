// Package snoopmva is the public API of this repository: an accurate and
// efficient performance-analysis toolkit for multiprocessor snooping
// cache-consistency protocols, reproducing Vernon, Lazowska & Zahorjan
// (ISCA 1988).
//
// Three models of the same machine are provided, in increasing cost:
//
//   - Solve — the paper's customized mean-value-analysis (MVA) model:
//     closed-form equations iterated to a fixed point, microseconds per
//     configuration, any system size;
//   - SolveDetailed — a Generalized Timed Petri Net model solved exactly
//     over its reachability graph (the paper's expensive comparator;
//     small systems only);
//   - Simulate — a cycle-level discrete-event simulation executing the
//     real per-block protocol state machines (the independent check).
//
// Protocols are expressed as Goodman's Write-Once protocol plus any
// combination of the paper's four modifications; the classic named
// protocols (Illinois, Berkeley, Dragon, RWB, Synapse, write-through) are
// provided as presets.
//
// Quick start:
//
//	w := snoopmva.AppendixA(snoopmva.Sharing5)
//	res, err := snoopmva.Solve(snoopmva.WriteOnce(), w, 10)
//	if err != nil { ... }
//	fmt.Println(res.Speedup)
package snoopmva

import (
	"fmt"

	"snoopmva/internal/protocol"
	"snoopmva/internal/workload"
)

// Sharing selects one of the paper's three Appendix A sharing levels.
type Sharing int

// The paper's sharing levels: the fractions of references to shared
// (read-only + writable) data.
const (
	Sharing1  Sharing = 1
	Sharing5  Sharing = 5
	Sharing20 Sharing = 20
)

func (s Sharing) internal() (workload.Sharing, error) {
	switch s {
	case Sharing1:
		return workload.Sharing1, nil
	case Sharing5:
		return workload.Sharing5, nil
	case Sharing20:
		return workload.Sharing20, nil
	default:
		return 0, fmt.Errorf("snoopmva: unknown sharing level %d%% (use 1, 5 or 20)", int(s))
	}
}

// Workload holds the paper's basic workload parameters (Section 2.3).
// Construct with AppendixA and adjust fields, or fill it directly; all
// probabilities are in [0,1] and the three stream probabilities must sum
// to one.
type Workload struct {
	// Tau is the mean processor execution time between memory requests,
	// in cycles.
	Tau float64
	// PPrivate, PSro, PSw partition references into private, shared
	// read-only and shared-writable streams.
	PPrivate, PSro, PSw float64
	// HPrivate, HSro, HSw are per-stream cache hit rates.
	HPrivate, HSro, HSw float64
	// RPrivate, RSw are per-stream read probabilities (sro is read-only).
	RPrivate, RSw float64
	// AmodPrivate, AmodSw are the probabilities that a write hit finds
	// the block already modified.
	AmodPrivate, AmodSw float64
	// CsupplySro, CsupplySw are the probabilities that another cache
	// holds a requested block.
	CsupplySro, CsupplySw float64
	// WbCsupply is the probability the cache supplier holds the block
	// dirty.
	WbCsupply float64
	// RepP, RepSw are the probabilities that a replaced block is dirty.
	RepP, RepSw float64
	// FixedParams suppresses the paper's automatic per-protocol
	// parameter adjustments (rep_p, rep_sw, h_sw; Appendix A notes).
	FixedParams bool
}

// AppendixA returns the workload of the paper's experiments at the given
// sharing level. It panics on an unknown level; use Validate for runtime
// checking of custom workloads.
func AppendixA(s Sharing) Workload {
	is, err := s.internal()
	if err != nil {
		panic(err)
	}
	return fromInternalParams(workload.AppendixA(is))
}

// StressWorkload returns the Section 4.3 stress-test parameters
// (deliberately unrealistic, maximal cache interference). Stress runs
// should set FixedParams since the values are meant verbatim.
func StressWorkload() Workload {
	w := fromInternalParams(workload.StressTest())
	w.FixedParams = true
	return w
}

// Validate checks ranges and the stream partition.
func (w Workload) Validate() error { return w.internal().Validate() }

func (w Workload) internal() workload.Params {
	return workload.Params{
		Tau:      w.Tau,
		PPrivate: w.PPrivate, PSro: w.PSro, PSw: w.PSw,
		HPrivate: w.HPrivate, HSro: w.HSro, HSw: w.HSw,
		RPrivate: w.RPrivate, RSw: w.RSw,
		AmodPrivate: w.AmodPrivate, AmodSw: w.AmodSw,
		CsupplySro: w.CsupplySro, CsupplySw: w.CsupplySw,
		WbCsupply: w.WbCsupply,
		RepP:      w.RepP, RepSw: w.RepSw,
	}
}

func fromInternalParams(p workload.Params) Workload {
	return Workload{
		Tau:      p.Tau,
		PPrivate: p.PPrivate, PSro: p.PSro, PSw: p.PSw,
		HPrivate: p.HPrivate, HSro: p.HSro, HSw: p.HSw,
		RPrivate: p.RPrivate, RSw: p.RSw,
		AmodPrivate: p.AmodPrivate, AmodSw: p.AmodSw,
		CsupplySro: p.CsupplySro, CsupplySw: p.CsupplySw,
		WbCsupply: p.WbCsupply,
		RepP:      p.RepP, RepSw: p.RepSw,
	}
}

// Timing holds the architectural constants (cycles). The zero value means
// the paper's defaults: T_supply = T_write = T_inval = 1, d_mem = 3,
// block size 4 words, T_block = 4.
type Timing struct {
	TSupply   float64
	TWrite    float64
	TInval    float64
	DMem      float64
	BlockSize int
	TBlock    float64
}

// DefaultTiming returns the paper's timing constants.
func DefaultTiming() Timing {
	t := workload.DefaultTiming()
	return Timing{
		TSupply: t.TSupply, TWrite: t.TWrite, TInval: t.TInval,
		DMem: t.DMem, BlockSize: t.BlockSize, TBlock: t.TBlock,
	}
}

func (t Timing) internal() workload.Timing {
	if t == (Timing{}) {
		return workload.DefaultTiming()
	}
	return workload.Timing{
		TSupply: t.TSupply, TWrite: t.TWrite, TInval: t.TInval,
		DMem: t.DMem, BlockSize: t.BlockSize, TBlock: t.TBlock,
	}
}

// Protocol identifies a snooping cache-consistency protocol: Write-Once
// plus a set of the paper's four modifications. The zero value is
// Write-Once.
type Protocol struct {
	inner protocol.Protocol
}

// WriteOnce returns Goodman's base protocol.
func WriteOnce() Protocol { return Protocol{inner: protocol.WriteOnce} }

// WithMods returns Write-Once extended with the given modifications
// (values 1–4, Section 2.2). Invalid numbers or the impractical
// mod-4-without-mod-1 combination yield an error from the solvers.
func WithMods(mods ...int) Protocol {
	var ms protocol.ModSet
	for _, m := range mods {
		if m >= 1 && m <= 4 {
			ms = ms.With(protocol.Mod(m))
		} else {
			// Mark invalid by an impossible combination detected later.
			ms |= 1 << 7
		}
	}
	return Protocol{inner: protocol.Protocol{Name: "", Mods: ms}}
}

// Synapse returns the Synapse protocol preset (modification 3).
func Synapse() Protocol { return Protocol{inner: protocol.Synapse} }

// Berkeley returns the Berkeley protocol preset (modifications 2+3).
func Berkeley() Protocol { return Protocol{inner: protocol.Berkeley} }

// Illinois returns the Illinois protocol preset (modifications 1+2+3).
func Illinois() Protocol { return Protocol{inner: protocol.Illinois} }

// Dragon returns the Dragon protocol preset (all four modifications).
func Dragon() Protocol { return Protocol{inner: protocol.Dragon} }

// RWB returns the RWB protocol preset (modifications 1+3+4).
func RWB() Protocol { return Protocol{inner: protocol.RWB} }

// WriteThrough returns the degenerate all-write-through protocol.
func WriteThrough() Protocol { return Protocol{inner: protocol.WriteThrough} }

// ProtocolByName resolves a named protocol (case-insensitive):
// "Write-Once", "Synapse", "Berkeley", "Illinois", "Dragon", "RWB",
// "Write-Through".
func ProtocolByName(name string) (Protocol, bool) {
	p, ok := protocol.ByName(name)
	return Protocol{inner: p}, ok
}

// Protocols returns all named presets.
func Protocols() []Protocol {
	named := protocol.Named()
	out := make([]Protocol, len(named))
	for i, p := range named {
		out[i] = Protocol{inner: p}
	}
	return out
}

// Name returns the protocol's name ("" for anonymous modification sets).
func (p Protocol) Name() string { return p.inner.Name }

// Mods returns the modification numbers the protocol includes.
func (p Protocol) Mods() []int {
	var out []int
	for _, m := range p.inner.Mods.Mods() {
		out = append(out, int(m))
	}
	return out
}

// HasMod reports whether the protocol includes modification m.
func (p Protocol) HasMod(m int) bool {
	return m >= 1 && m <= 4 && p.inner.Mods.Has(protocol.Mod(m))
}

// String implements fmt.Stringer.
func (p Protocol) String() string { return p.inner.String() }

func (p Protocol) validate() error {
	if p.inner.Mods&(1<<7) != 0 {
		return fmt.Errorf("snoopmva: protocol has invalid modification numbers (use 1-4): %w", workload.ErrInvalid)
	}
	if p.inner.WriteThroughBase {
		return nil
	}
	if err := p.inner.Mods.Valid(); err != nil {
		return fmt.Errorf("%w: %w", workload.ErrInvalid, err)
	}
	return nil
}
