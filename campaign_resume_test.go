package snoopmva

// Resume-contract tests: the typed spec-mismatch refusal, and the
// workers>1 half of the determinism contract (DESIGN.md §13) — a
// parallel campaign resumed after a crash yields the same result *set*
// as an uninterrupted run, even though journal record order may differ
// run to run.

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"snoopmva/internal/faultinject"
)

func TestResumeSpecMismatchIsTypedAndActionable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	grid := testGrid(4, mvaOnlyBudget)
	if _, err := RunCampaign(context.Background(), CampaignSpec{
		Points: grid, Journal: path, Workers: 1, BreakerThreshold: -1,
	}); err != nil {
		t.Fatal(err)
	}

	// Same point count, different grid content: only the fingerprint can
	// catch this.
	other := testGrid(4, mvaOnlyBudget)
	other[2].N += 100
	_, err := RunCampaign(context.Background(), CampaignSpec{
		Points: other, Journal: path, Resume: true, Workers: 1, BreakerThreshold: -1,
	})
	if err == nil {
		t.Fatal("resume with a different grid succeeded")
	}
	var mismatch *SpecMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("err = %T (%v), want *SpecMismatchError", err, err)
	}
	if !errors.Is(err, ErrInvalidInput) {
		t.Errorf("SpecMismatchError should match ErrInvalidInput; got %v", err)
	}
	if mismatch.Path != path {
		t.Errorf("Path = %q, want %q", mismatch.Path, path)
	}
	if mismatch.JournalFingerprint == "" || mismatch.SpecFingerprint == "" ||
		mismatch.JournalFingerprint == mismatch.SpecFingerprint {
		t.Errorf("fingerprints not distinguishing: journal %q, spec %q",
			mismatch.JournalFingerprint, mismatch.SpecFingerprint)
	}
	if mismatch.JournalFingerprint != CampaignFingerprint(grid) {
		t.Errorf("JournalFingerprint = %q, want the original grid's %q",
			mismatch.JournalFingerprint, CampaignFingerprint(grid))
	}
	if mismatch.SpecFingerprint != CampaignFingerprint(other) {
		t.Errorf("SpecFingerprint = %q, want the resuming grid's %q",
			mismatch.SpecFingerprint, CampaignFingerprint(other))
	}
	// The message must name both fingerprints so the operator can tell
	// which side changed.
	msg := err.Error()
	if !strings.Contains(msg, mismatch.JournalFingerprint) || !strings.Contains(msg, mismatch.SpecFingerprint) {
		t.Errorf("message does not name both fingerprints: %q", msg)
	}
}

func TestCampaignCrashResumeParallelWorkersSetEquality(t *testing.T) {
	// With Workers > 1, completion order — and hence journal record
	// order — is scheduling-dependent, so byte-identity is off the table.
	// The contract is set equality: after crash + resume, every point's
	// result equals the uninterrupted (and the sequential) run's.
	points := testGrid(24, mvaOnlyBudget)
	dir := t.TempDir()

	ref, err := RunCampaign(context.Background(), CampaignSpec{
		Points: points, Workers: 1, BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}

	crashPath := filepath.Join(dir, "crash.jsonl")
	restore := faultinject.Activate(&faultinject.Set{
		CampaignCrash: func(recorded int) bool { return recorded >= 7 },
	})
	_, err = RunCampaign(context.Background(), CampaignSpec{
		Points: points, Journal: crashPath, Workers: 4, BreakerThreshold: -1,
	})
	restore()
	if !errors.Is(err, errCampaignCrash) {
		t.Fatalf("crash run: err = %v, want injected crash", err)
	}
	crashed := journalPoints(t, crashPath)
	if len(crashed) == 0 {
		t.Fatal("crash run journaled nothing")
	}

	res, err := RunCampaign(context.Background(), CampaignSpec{
		Points: points, Journal: crashPath, Resume: true, Workers: 4, BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatalf("parallel resume: %v", err)
	}
	if res.Resumed != len(crashed) || res.Resumed+res.Computed != len(points) {
		t.Fatalf("resume accounting: resumed %d (want %d), computed %d", res.Resumed, len(crashed), res.Computed)
	}

	// Result-set equality against the sequential reference, point by
	// point and order-independent over the journal.
	for i := range points {
		want, got := ref.Results[i], res.Results[i]
		want.Resumed, got.Resumed = false, false
		if !reflect.DeepEqual(want, got) {
			t.Errorf("point %d: want %+v, got %+v", i, want, got)
		}
	}
	final := journalPoints(t, crashPath) // fails on duplicate indexes
	if len(final) != len(points) {
		t.Fatalf("journal has %d points, want %d", len(final), len(points))
	}
	for i := range points {
		pr, ok := final[i]
		if !ok {
			t.Fatalf("point %d missing from journal", i)
		}
		if pr.Speedup != ref.Results[i].Speedup || pr.Err != ref.Results[i].Err {
			t.Errorf("journal point %d diverged from reference: %+v vs %+v", i, pr, ref.Results[i])
		}
	}
}
