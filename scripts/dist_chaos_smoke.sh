#!/usr/bin/env sh
# Distributed chaos smoke test: real snoopd worker processes, a real
# campaignd coordinator, a real SIGKILL of a worker mid-grid, then a real
# SIGKILL of the coordinator, then a resume against a shrunken pool — and
# the final result set must equal an uninterrupted local cmd/campaign
# run's, point for point. The in-process chaos suite
# (internal/dispatch/chaos_test.go) covers the same failures with
# simulated transports; this exercises the real binaries end to end.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -KILL "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/snoopd" ./cmd/snoopd
go build -o "$workdir/campaign" ./cmd/campaign
go build -o "$workdir/campaignd" ./cmd/campaignd

# The grid: MVA-only would finish in microseconds, so enable the
# simulator stage to give each kill a window. 24 points.
grid="-protocols Write-Once,Illinois -sharing 5,20 -ns 2,4,6,8,10,12"
budget="-max-states -1 -sim-cycles 400000"

# start_worker <port> [snoopd flags...] — starts a snoopd, waits for
# /healthz, and leaves the pid in $wpid. Not a command substitution: the
# backgrounded server would hold the $() stdout pipe open forever.
start_worker() {
    port=$1
    shift
    addr="127.0.0.1:$port"
    "$workdir/snoopd" -addr "$addr" "$@" >"$workdir/snoopd.$port.log" 2>&1 &
    wpid=$!
    pids="$pids $wpid"
    waited=0
    until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
        if ! kill -0 "$wpid" 2>/dev/null; then
            echo "dist_chaos: worker on $addr died at startup" >&2
            cat "$workdir/snoopd.$port.log" >&2
            exit 1
        fi
        waited=$((waited + 1))
        if [ "$waited" -gt 100 ]; then
            echo "dist_chaos: worker on $addr not healthy after 10s" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "dist_chaos: starting 3 snoopd workers"
start_worker 18091; w1=$wpid
start_worker 18092; w2=$wpid
start_worker 18093; w3=$wpid
pool="http://127.0.0.1:18091,http://127.0.0.1:18092,http://127.0.0.1:18093"

# Reference: the uninterrupted single-process runner, same grid.
echo "dist_chaos: local reference run"
"$workdir/campaign" $grid $budget -workers 1 -breaker -1 -quiet \
    -journal "$workdir/ref.jsonl"

# Chaos run: distributed, with a worker SIGKILLed mid-grid and then the
# coordinator SIGKILLed too.
echo "dist_chaos: distributed run (worker + coordinator will be killed)"
"$workdir/campaignd" -workers "$pool" $grid $budget -quiet \
    -health-interval 200ms -quarantine-after 2 -breaker 2 \
    -journal "$workdir/run.jsonl" >"$workdir/campaignd.log" 2>&1 &
cpid=$!
pids="$pids $cpid"

# Wait for journaled progress (header + 2 points), then SIGKILL a worker.
waited=0
while :; do
    lines=0
    [ -f "$workdir/run.jsonl" ] && lines=$(wc -l < "$workdir/run.jsonl")
    [ "$lines" -ge 3 ] && break
    if ! kill -0 "$cpid" 2>/dev/null; then
        echo "dist_chaos: coordinator finished before the worker kill; grid too fast" >&2
        exit 1
    fi
    waited=$((waited + 1))
    if [ "$waited" -gt 600 ]; then
        echo "dist_chaos: no journal progress after 60s" >&2
        cat "$workdir/campaignd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "dist_chaos: SIGKILL worker 1 (journal at $lines lines)"
kill -KILL "$w1" 2>/dev/null || true

# A little more progress on the surviving workers, then kill the
# coordinator itself.
target=$((lines + 3))
waited=0
while :; do
    lines=$(wc -l < "$workdir/run.jsonl")
    [ "$lines" -ge "$target" ] && break
    if ! kill -0 "$cpid" 2>/dev/null; then
        echo "dist_chaos: coordinator finished before it could be killed; grid too fast" >&2
        exit 1
    fi
    waited=$((waited + 1))
    if [ "$waited" -gt 600 ]; then
        echo "dist_chaos: no progress after the worker kill" >&2
        cat "$workdir/campaignd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "dist_chaos: SIGKILL coordinator (journal at $lines lines)"
kill -KILL "$cpid" 2>/dev/null || true
wait "$cpid" 2>/dev/null || true

# Resume with the two surviving workers; the journal is the contract.
echo "dist_chaos: resume with 2 surviving workers"
pool2="http://127.0.0.1:18092,http://127.0.0.1:18093"
"$workdir/campaignd" -workers "$pool2" $grid $budget -quiet -resume \
    -health-interval 200ms -quarantine-after 2 -breaker 2 \
    -journal "$workdir/run.jsonl"

# Result-set equality: with >1 workers the journal's point order is
# scheduling-dependent, so compare the sorted point records. The solvers
# are deterministic, so every point's line must be byte-identical to the
# reference's line for that point.
grep '"kind":"point"' "$workdir/ref.jsonl" | sort > "$workdir/ref.points"
grep '"kind":"point"' "$workdir/run.jsonl" | sort > "$workdir/run.points"
if ! cmp -s "$workdir/ref.points" "$workdir/run.points"; then
    echo "dist_chaos: FAIL — distributed result set differs from local reference" >&2
    diff "$workdir/ref.points" "$workdir/run.points" >&2 || true
    exit 1
fi
count=$(wc -l < "$workdir/run.points")
echo "dist_chaos: PASS — $count points survived a worker kill + coordinator kill, set-identical to local run"

# ------------------------------------------------------------------
# Brownout phase: one fresh worker runs with a deliberately tiny
# admission capacity (one slot, no queue, a 5 req/s per-client rate
# limit, brownout armed), the other is healthy. The coordinator must
# treat every 429/503 as backpressure — shifting load to the healthy
# worker, tripping neither the breaker nor quarantine — and finish the
# grid. The budgets are MVA-only, so brownout cannot rewrite any of
# them: the result set must still match a local reference byte for
# byte. /metrics on the tiny worker must show real admission sheds.
echo "dist_chaos: brownout phase — tiny-capacity worker sheds, healthy worker absorbs"
start_worker 18094 -max-inflight 1 -admission-queue -1 \
    -rate-per-client 5 -brownout-shed-pct 0.2
w4=$wpid
start_worker 18095
w5=$wpid

mva_budget="-max-states -1 -sim-cycles -1"
"$workdir/campaign" $grid $mva_budget -workers 1 -breaker -1 -quiet \
    -journal "$workdir/bref.jsonl"
"$workdir/campaignd" -workers "http://127.0.0.1:18094,http://127.0.0.1:18095" \
    $grid $mva_budget -quiet -health-interval 200ms -breaker 2 \
    -max-inflight 2 -journal "$workdir/brun.jsonl"

grep '"kind":"point"' "$workdir/bref.jsonl" | sort > "$workdir/bref.points"
grep '"kind":"point"' "$workdir/brun.jsonl" | sort > "$workdir/brun.points"
if ! cmp -s "$workdir/bref.points" "$workdir/brun.points"; then
    echo "dist_chaos: FAIL — brownout-phase result set differs from local reference" >&2
    diff "$workdir/bref.points" "$workdir/brun.points" >&2 || true
    exit 1
fi
sheds=$(curl -sf "http://127.0.0.1:18094/metrics" |
    awk '/^snoopmva_admission_shed_total/ { s += $NF } END { printf "%d", s }')
if [ "${sheds:-0}" -le 0 ]; then
    echo "dist_chaos: FAIL — tiny-capacity worker shed nothing; overload protection never engaged" >&2
    curl -s "http://127.0.0.1:18094/metrics" >&2 || true
    exit 1
fi
bcount=$(wc -l < "$workdir/brun.points")
echo "dist_chaos: PASS — brownout phase: $bcount points set-identical to local run with $sheds admission sheds"

# ------------------------------------------------------------------
# Wire phase: the same grid dispatched over the binary wire protocol
# (wire:// workers with HTTP fallback URLs), with one worker SIGKILLed
# mid-grid. The coordinator's wire transport must ride
# reconnect-with-resend where the connection can be salvaged and requeue
# where it cannot, finish on the survivor, and produce the same point
# set as the local reference — byte for byte, since the solvers are
# deterministic. The survivor's /metrics must show real wire-protocol
# traffic, proving the phase did not silently fall back to JSON.
echo "dist_chaos: wire phase — binary-protocol workers, one killed mid-grid"
start_worker 18096 -wire-addr 127.0.0.1:18196
w6=$wpid
start_worker 18097 -wire-addr 127.0.0.1:18197
w7=$wpid

wpool="wire://127.0.0.1:18196?http=http://127.0.0.1:18096,wire://127.0.0.1:18197?http=http://127.0.0.1:18097"
"$workdir/campaignd" -workers "$wpool" $grid $budget -quiet \
    -health-interval 200ms -quarantine-after 2 -breaker 2 \
    -journal "$workdir/wrun.jsonl" >"$workdir/campaignd.wire.log" 2>&1 &
wcpid=$!
pids="$pids $wcpid"

waited=0
while :; do
    lines=0
    [ -f "$workdir/wrun.jsonl" ] && lines=$(wc -l < "$workdir/wrun.jsonl")
    [ "$lines" -ge 3 ] && break
    if ! kill -0 "$wcpid" 2>/dev/null; then
        echo "dist_chaos: wire coordinator finished before the worker kill; grid too fast" >&2
        exit 1
    fi
    waited=$((waited + 1))
    if [ "$waited" -gt 600 ]; then
        echo "dist_chaos: no wire-phase journal progress after 60s" >&2
        cat "$workdir/campaignd.wire.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "dist_chaos: SIGKILL wire worker 1 (journal at $lines lines)"
kill -KILL "$w6" 2>/dev/null || true

if ! wait "$wcpid"; then
    echo "dist_chaos: FAIL — wire-phase coordinator exited non-zero" >&2
    cat "$workdir/campaignd.wire.log" >&2
    exit 1
fi

grep '"kind":"point"' "$workdir/wrun.jsonl" | sort > "$workdir/wrun.points"
if ! cmp -s "$workdir/ref.points" "$workdir/wrun.points"; then
    echo "dist_chaos: FAIL — wire-phase result set differs from local reference" >&2
    diff "$workdir/ref.points" "$workdir/wrun.points" >&2 || true
    exit 1
fi
wirereqs=$(curl -sf "http://127.0.0.1:18097/metrics" |
    awk '/^snoopmva_wire_requests_total/ { s += $NF } END { printf "%d", s }')
if [ "${wirereqs:-0}" -le 0 ]; then
    echo "dist_chaos: FAIL — surviving worker served no wire-protocol requests; phase fell back to JSON" >&2
    curl -s "http://127.0.0.1:18097/metrics" >&2 || true
    exit 1
fi
wcount=$(wc -l < "$workdir/wrun.points")
echo "dist_chaos: PASS — wire phase: $wcount points survived a worker kill over the binary protocol ($wirereqs wire requests on the survivor), set-identical to local run"
