#!/usr/bin/env sh
# Smoke test for cmd/snoopd: start the server on a private port, hit
# /healthz, /metrics and /v1/solve over real HTTP, then send SIGTERM and
# verify the graceful drain exits 0. Exercises the real binary end to
# end — the in-process httptest suite covers the handler logic.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/snoopd" ./cmd/snoopd

addr=127.0.0.1:18080
base="http://$addr"

echo "snoopd_smoke: starting server on $addr"
"$workdir/snoopd" -addr "$addr" 2>"$workdir/snoopd.log" &
pid=$!

# Wait for the listener (the binary prints its banner after Listen).
waited=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "snoopd_smoke: server died before becoming healthy" >&2
        cat "$workdir/snoopd.log" >&2
        exit 1
    fi
    waited=$((waited + 1))
    if [ "$waited" -gt 100 ]; then
        echo "snoopd_smoke: server not healthy after 10s" >&2
        cat "$workdir/snoopd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "snoopd_smoke: /healthz"
health=$(curl -sf "$base/healthz")
[ "$health" = "ok" ] || { echo "snoopd_smoke: unexpected healthz body: $health" >&2; exit 1; }

echo "snoopd_smoke: /v1/solve"
solve=$(curl -sf -X POST "$base/v1/solve" -d '{
    "protocol": {"name": "Illinois"},
    "workload": {"appendix_a": 5},
    "n": 10
}')
case "$solve" in
    *'"speedup"'*) ;;
    *) echo "snoopd_smoke: solve response lacks a speedup: $solve" >&2; exit 1 ;;
esac

echo "snoopd_smoke: /metrics"
metrics=$(curl -sf "$base/metrics")
for series in snoopmva_http_requests_total snoopmva_mva_solves_total snoopmva_solvecache_hits_total; do
    case "$metrics" in
        *"$series"*) ;;
        *) echo "snoopd_smoke: /metrics lacks $series" >&2; exit 1 ;;
    esac
done

echo "snoopd_smoke: graceful shutdown"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "snoopd_smoke: server exited $status on SIGTERM" >&2
    cat "$workdir/snoopd.log" >&2
    exit 1
fi

echo "snoopd_smoke: PASS"
