#!/usr/bin/env sh
# Kill-and-resume smoke test for cmd/campaign: run a sweep slow enough to
# catch mid-flight, SIGKILL it, resume with the same grid, and verify the
# resumed journal holds exactly the records of an uninterrupted reference
# run (no point lost, none double-counted). Exercises the real binary and
# a real SIGKILL — the in-process chaos tests cover the simulated crash.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/campaign" ./cmd/campaign

# The grid: MVA-only would finish in microseconds, so enable the
# simulator stage to give the kill a window. 24 points, one worker,
# so the journal grows steadily.
grid="-protocols Write-Once,Illinois -sharing 5,20 -ns 2,4,6,8,10,12"
budget="-max-states -1 -sim-cycles 400000"
common="$grid $budget -workers 1 -breaker -1 -quiet"

echo "chaos_smoke: reference run (uninterrupted)"
"$workdir/campaign" $common -journal "$workdir/ref.jsonl"

echo "chaos_smoke: crash run"
"$workdir/campaign" $common -journal "$workdir/run.jsonl" &
pid=$!
# Wait for at least one journaled point (header line + 1), then kill hard.
waited=0
while :; do
    if [ -f "$workdir/run.jsonl" ]; then
        lines=$(wc -l < "$workdir/run.jsonl")
    else
        lines=0
    fi
    if [ "$lines" -ge 2 ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "chaos_smoke: campaign finished before it could be killed; grid too fast" >&2
        exit 1
    fi
    waited=$((waited + 1))
    if [ "$waited" -gt 600 ]; then
        echo "chaos_smoke: no journal progress after 60s" >&2
        exit 1
    fi
    sleep 0.1
done
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
killed_lines=$(wc -l < "$workdir/run.jsonl")
echo "chaos_smoke: killed with $killed_lines journal lines"

echo "chaos_smoke: resume run"
"$workdir/campaign" $common -journal "$workdir/run.jsonl" -resume

# Byte-level equality: one worker, breaker disabled, deterministic seeds.
if ! cmp -s "$workdir/ref.jsonl" "$workdir/run.jsonl"; then
    echo "chaos_smoke: FAIL — resumed journal differs from uninterrupted reference" >&2
    diff "$workdir/ref.jsonl" "$workdir/run.jsonl" >&2 || true
    exit 1
fi
echo "chaos_smoke: PASS — resumed journal byte-identical to reference"
