#!/bin/sh
# Regenerate the checked-in solve-layer benchmark baseline.
#
#   scripts/bench.sh            # full run, rewrites BENCH_solver.json
#   scripts/bench.sh -quick     # CI-sized run (same flags as cmd/bench)
#
# Run from the repository root on an otherwise idle machine; the numbers
# are wall-clock and noisy under load.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/bench -out BENCH_solver.json "$@"
