package snoopmva

import (
	"math"
	"strings"
	"testing"
)

func TestSolveGroupsSingleMatchesSolve(t *testing.T) {
	w := AppendixA(Sharing5)
	h, err := SolveGroups([]GroupSpec{{Name: "all", Count: 10, Protocol: WriteOnce(), Workload: w}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Solve(WriteOnce(), w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Speedup-s.Speedup)/s.Speedup > 1e-6 {
		t.Errorf("groups %v vs single %v", h.Speedup, s.Speedup)
	}
}

func TestSolveGroupsMixed(t *testing.T) {
	res, err := SolveGroups([]GroupSpec{
		{Name: "wo", Count: 4, Protocol: WriteOnce(), Workload: AppendixA(Sharing20)},
		{Name: "dragon", Count: 4, Protocol: Dragon(), Workload: AppendixA(Sharing20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessors != 8 || len(res.PerGroup) != 2 {
		t.Fatalf("bookkeeping: %+v", res)
	}
	if res.PerGroup[1].Speedup/4 <= res.PerGroup[0].Speedup/4 {
		t.Errorf("Dragon group should outperform WO group: %+v", res.PerGroup)
	}
}

func TestSolveGroupsValidation(t *testing.T) {
	if _, err := SolveGroups(nil); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := SolveGroups([]GroupSpec{{Count: 2, Protocol: WithMods(9), Workload: AppendixA(Sharing5)}}); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestExplainFacade(t *testing.T) {
	var sb strings.Builder
	if err := Explain(&sb, Illinois(), AppendixA(Sharing5), 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup") || !strings.Contains(sb.String(), "eq 13") {
		t.Errorf("breakdown incomplete:\n%s", sb.String())
	}
	if err := Explain(&sb, WithMods(9), AppendixA(Sharing5), 8); err == nil {
		t.Error("bad protocol accepted")
	}
}
