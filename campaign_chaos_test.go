package snoopmva

// Chaos tests for the campaign runner: injected mid-run crashes, torn
// journal records and persistently failing ladder stages. They assert the
// three campaign invariants — no point lost, no point double-counted,
// resume deterministic — plus the breaker's budget-saving guarantee.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/journal"
)

func TestChaosCrashAndResumeIsBitwiseIdentical(t *testing.T) {
	dir := t.TempDir()
	points := testGrid(30, mvaOnlyBudget)
	spec := func(path string) CampaignSpec {
		return CampaignSpec{
			Points:  points,
			Journal: path,
			// One worker and no breaker make completion order — and hence
			// the whole journal byte stream — deterministic, which lets
			// this test demand the strongest form of resume determinism.
			Workers:          1,
			BreakerThreshold: -1,
		}
	}

	// Reference: an uninterrupted run.
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err := RunCampaign(context.Background(), spec(refPath)); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted: crash after the 11th journaled record.
	crashPath := filepath.Join(dir, "crash.jsonl")
	restore := faultinject.Activate(&faultinject.Set{
		CampaignCrash: func(recorded int) bool { return recorded >= 11 },
	})
	_, err := RunCampaign(context.Background(), spec(crashPath))
	restore()
	if !errors.Is(err, errCampaignCrash) {
		t.Fatalf("crash run: err = %v, want injected crash", err)
	}
	if survived := len(journalPoints(t, crashPath)); survived != 11 {
		t.Fatalf("crash run journaled %d points, want 11", survived)
	}

	// Resume and compare byte-for-byte against the uninterrupted journal.
	s := spec(crashPath)
	s.Resume = true
	res, err := RunCampaign(context.Background(), s)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Resumed != 11 || res.Computed != 19 || res.Failed != 0 {
		t.Fatalf("resume accounting: %+v", res)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Fatalf("resumed journal differs from uninterrupted run:\n--- uninterrupted (%d bytes)\n%s\n--- crash+resume (%d bytes)\n%s",
			len(ref), ref, len(got), got)
	}

	// Invariants over the final journal: every point exactly once.
	final := journalPoints(t, crashPath) // fails on duplicates
	if len(final) != len(points) {
		t.Fatalf("lost points: journal has %d of %d", len(final), len(points))
	}
	for i := range points {
		if _, ok := final[i]; !ok {
			t.Fatalf("point %d lost", i)
		}
	}
}

func TestChaosTornRecordIsRecoveredOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	spec := CampaignSpec{
		Points:           testGrid(12, mvaOnlyBudget),
		Journal:          path,
		Workers:          1,
		BreakerThreshold: -1,
	}
	// Crash after 5 records, then tear the final record in half — the
	// on-disk state a kill during an unsynced write leaves behind.
	restore := faultinject.Activate(&faultinject.Set{
		CampaignCrash: func(recorded int) bool { return recorded >= 5 },
	})
	_, err := RunCampaign(context.Background(), spec)
	restore()
	if !errors.Is(err, errCampaignCrash) {
		t.Fatalf("crash run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	spec.Resume = true
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume over torn journal: %v", err)
	}
	// The torn record (point 4) is rolled back and recomputed.
	if res.Resumed != 4 || res.Computed != 8 {
		t.Fatalf("torn resume accounting: %+v", res)
	}
	final := journalPoints(t, path)
	if len(final) != 12 {
		t.Fatalf("final journal has %d points, want 12", len(final))
	}
	// The rewritten journal must be clean: reopening reports no recovery.
	j, info, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if info.Recovered {
		t.Fatal("resume left the torn tail in place")
	}
}

func TestChaosBreakerSavesGTPNBudget(t *testing.T) {
	// Persistent GTPN failure across a 100-point campaign: the reachability
	// BFS explodes on every attempt. With the breaker at threshold 3 and a
	// single worker, the GTPN stage must be attempted exactly 3 times; the
	// other 97 points skip it and degrade straight to MVA.
	var gtpnAttempts atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(states int) bool {
			gtpnAttempts.Add(1)
			return true
		},
	})
	defer restore()

	spec := CampaignSpec{
		Points:           testGrid(100, Budget{SimCycles: -1}), // gtpn → mva ladder
		Workers:          1,
		BreakerThreshold: 3,
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if got := gtpnAttempts.Load(); got != 3 {
		t.Fatalf("GTPN stage attempted %d times, want exactly breaker threshold (3)", got)
	}
	if res.Failed != 0 {
		t.Fatalf("points failed despite MVA fallback: %+v", res)
	}
	// The first three points degraded through a real GTPN failure; the
	// rest skipped the stage outright.
	for i, pr := range res.Results {
		switch {
		case i < 3:
			if !pr.Degraded || pr.FallbackReason == "" || len(pr.SkippedStages) != 0 {
				t.Fatalf("point %d should record a GTPN failure: %+v", i, pr)
			}
		default:
			if len(pr.SkippedStages) != 1 || pr.SkippedStages[0] != "gtpn" {
				t.Fatalf("point %d should skip the open GTPN stage: %+v", i, pr)
			}
		}
		if pr.Method != MethodMVA {
			t.Fatalf("point %d landed on %s, want mva", i, pr.Method)
		}
	}
	if len(res.OpenStages) != 1 || res.OpenStages[0] != "gtpn" {
		t.Fatalf("OpenStages = %v, want [gtpn]", res.OpenStages)
	}
}

func TestChaosBreakerTripsOnOutrightPointFailures(t *testing.T) {
	// GTPN explodes AND the MVA rung stalls, so every point fails
	// permanently instead of degrading to a result. The breaker must still
	// learn from those failures: after threshold points, the GTPN stage is
	// skipped rather than re-burning its budget on every remaining point.
	var gtpnAttempts atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		PetriExplode: func(states int) bool {
			gtpnAttempts.Add(1)
			return true
		},
		MVAStall: func(iter int) bool { return true },
	})
	defer restore()

	spec := CampaignSpec{
		Points:           testGrid(10, Budget{SimCycles: -1}), // gtpn → mva ladder
		Workers:          1,
		BreakerThreshold: 3,
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.Failed != 10 {
		t.Fatalf("every point should fail outright: %+v", res)
	}
	if got := gtpnAttempts.Load(); got != 3 {
		t.Fatalf("GTPN stage attempted %d times, want exactly breaker threshold (3)", got)
	}
	for i, pr := range res.Results {
		if pr.Err == "" {
			t.Fatalf("point %d unexpectedly succeeded: %+v", i, pr)
		}
		if i >= 3 && (len(pr.SkippedStages) != 1 || pr.SkippedStages[0] != "gtpn") {
			t.Fatalf("point %d should skip the open GTPN stage: %+v", i, pr)
		}
	}
	// Both the GTPN and MVA rungs failed persistently; both circuits open.
	if len(res.OpenStages) != 2 || res.OpenStages[0] != "gtpn" || res.OpenStages[1] != "mva" {
		t.Fatalf("OpenStages = %v, want [gtpn mva]", res.OpenStages)
	}
}

func TestChaosJournalFaultLatchesJournaling(t *testing.T) {
	// The third append (header, then one point, land; the next point's
	// append fails with a short write). The campaign must latch journaling
	// off, surface the error, and leave a journal that is still valid and
	// resumable — never one where later appends have concatenated onto a
	// partial record.
	path := filepath.Join(t.TempDir(), "c.jsonl")
	spec := CampaignSpec{
		Points:           testGrid(9, mvaOnlyBudget),
		Journal:          path,
		Workers:          2,
		BreakerThreshold: -1,
	}
	injected := errors.New("injected disk-full append")
	var appends atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		JournalAppendFault: func(string) error {
			if appends.Add(1) >= 3 {
				return injected
			}
			return nil
		},
	})
	_, err := RunCampaign(context.Background(), spec)
	restore()
	if !errors.Is(err, injected) {
		t.Fatalf("campaign with failing journal: err = %v, want injected append error", err)
	}
	j, info, jerr := journal.Open(path)
	if jerr != nil {
		t.Fatalf("journal after append fault must stay openable: %v", jerr)
	}
	j.Close()
	if info.Recovered {
		t.Fatal("failed append left a torn tail despite rollback")
	}
	if got := len(journalPoints(t, path)); got != 1 {
		t.Fatalf("journal holds %d points after the latched failure, want 1", got)
	}

	spec.Resume = true
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume after journal fault: %v", err)
	}
	if res.Resumed != 1 || res.Computed != 8 || res.Failed != 0 {
		t.Fatalf("resume accounting: %+v", res)
	}
	if got := len(journalPoints(t, path)); got != 9 {
		t.Fatalf("final journal has %d points, want 9", got)
	}
}

func TestChaosBreakerProbeClosesAfterRecovery(t *testing.T) {
	// The stage fails for the first 3 points, opening the circuit, then
	// recovers. With a probe interval the breaker must let a trial through
	// and close again, so later points regain the high-fidelity stage.
	// With one worker, points run in index order, so PointFault (which
	// sees every attempt) can tell PetriExplode which point is in flight.
	var current atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		PointFault: func(index, attempt int) error {
			current.Store(int64(index))
			return nil
		},
		PetriExplode: func(states int) bool { return current.Load() < 3 },
	})
	defer restore()

	pts := testGrid(12, Budget{MaxStates: 200000, SimCycles: -1})
	for i := range pts {
		pts[i].N = 2 // keep the real GTPN solves tiny
	}
	spec := CampaignSpec{
		Points:           pts,
		Workers:          1,
		BreakerThreshold: 3,
		BreakerProbe:     2,
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	// Points 0–2 fail GTPN and trip the breaker; skipped points follow
	// until a probe lands, succeeds, and closes the circuit; every point
	// after the probe solves with GTPN again.
	probe := -1
	for i := 3; i < len(res.Results); i++ {
		if res.Results[i].Method == MethodGTPN {
			probe = i
			break
		}
	}
	if probe < 0 {
		t.Fatalf("breaker never closed after recovery: %+v", res.Results)
	}
	for i := probe; i < len(res.Results); i++ {
		if res.Results[i].Method != MethodGTPN {
			t.Fatalf("point %d after recovery landed on %s", i, res.Results[i].Method)
		}
	}
	if len(res.OpenStages) != 0 {
		t.Fatalf("circuit still open after recovery: %v", res.OpenStages)
	}
}
