package snoopmva

import (
	"context"
	"fmt"
	"io"

	"snoopmva/internal/cachesim"
	"snoopmva/internal/exp"
	"snoopmva/internal/gtpnmodel"
	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
)

// This file holds the context-aware variants of the solver entry points.
// Each threads ctx into the underlying engine's hot loop (the MVA fixed
// point, the GTPN reachability BFS, the simulator cycle loop), which checks
// it periodically and abandons the computation when it fires; the returned
// error then satisfies errors.Is(err, ErrCanceled). Every variant also
// recovers internal panics into *PanicError and maps errors onto the public
// taxonomy (see errors.go).

// SolveContext is Solve with cancellation.
func SolveContext(ctx context.Context, p Protocol, w Workload, n int) (Result, error) {
	return SolveWithContext(ctx, p, w, Timing{}, n, Options{})
}

// SolveWithContext is SolveWith with cancellation.
func SolveWithContext(ctx context.Context, p Protocol, w Workload, t Timing, n int, opts Options) (res Result, err error) {
	defer guard(&err)
	m, err := model(p, w, t)
	if err != nil {
		return Result{}, err
	}
	r, err := m.SolveContext(ctx, n, opts.internal())
	if err != nil {
		return Result{}, err
	}
	return fromMVA(r), nil
}

// fromMVA converts an internal MVA result to the public Result.
func fromMVA(r mva.Result) Result {
	return Result{
		N:               r.N,
		Speedup:         r.Speedup,
		ProcessingPower: r.ProcessingPower,
		R:               r.R,
		BusUtilization:  r.UBus,
		BusWait:         r.WBus,
		MemUtilization:  r.UMem,
		MemWait:         r.WMem,
		Iterations:      r.Iterations,
	}
}

// SweepContext is Sweep with cancellation: the sweep stops at the first
// size whose solve fails or is canceled.
//
// The sweep is warm-started: each size's fixed-point iteration is seeded
// from the previous size's converged state (adjacent sizes have nearby
// solutions, so the iteration count drops sharply across a N=1..100
// curve). Every point still converges to the same tolerance as a cold
// solve — warm starting changes the iteration trajectory, not the fixed
// point — so results agree with per-size Solve calls to within the solver
// tolerance (the property suite enforces this; cmd/bench quantifies the
// iteration savings).
func SweepContext(ctx context.Context, p Protocol, w Workload, ns []int) (out []Result, err error) {
	defer guard(&err)
	m, merr := model(p, w, Timing{})
	if merr != nil {
		return nil, merr
	}
	opts := Options{}.internal()
	out = make([]Result, 0, len(ns))
	for _, n := range ns {
		r, serr := m.SolveContext(ctx, n, opts)
		if serr != nil {
			return nil, fmt.Errorf("snoopmva: sweep at N=%d: %w", n, serr)
		}
		out = append(out, fromMVA(r))
		warm := r.Warm()
		opts.Warm = &warm
	}
	return out, nil
}

// SolveDetailedContext is SolveDetailed with cancellation: the reachability
// analysis checks ctx every ~1k expanded states.
func SolveDetailedContext(ctx context.Context, p Protocol, w Workload, n int) (res DetailedResult, err error) {
	defer guard(&err)
	if err := p.validate(); err != nil {
		return DetailedResult{}, err
	}
	g, err := gtpnmodel.SolveContext(ctx, gtpnmodel.Config{
		Workload:         w.internal(),
		Mods:             p.inner.Mods,
		RawParams:        w.FixedParams,
		WriteThroughBase: p.inner.WriteThroughBase,
		N:                n,
	}, petri.Options{})
	if err != nil {
		return DetailedResult{}, err
	}
	return DetailedResult{
		N: g.N, Speedup: g.Speedup, R: g.R, BusUtilization: g.UBus, States: g.States,
	}, nil
}

// SimulateContext is Simulate with cancellation: the cycle loop checks ctx
// every ~10k simulated cycles.
func SimulateContext(ctx context.Context, p Protocol, w Workload, n int, opts SimOptions) (res SimResult, err error) {
	defer guard(&err)
	if err := p.validate(); err != nil {
		return SimResult{}, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	r, err := cachesim.RunContext(ctx, cachesim.Config{
		N:                 n,
		Protocol:          p.inner,
		Workload:          w.internal(),
		RawParams:         w.FixedParams,
		Seed:              seed,
		WarmupCycles:      opts.WarmupCycles,
		MeasureCycles:     opts.MeasureCycles,
		AdaptiveThreshold: opts.AdaptiveThreshold,
		SplitTransactions: opts.SplitTransactions,
	})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		N:               r.N,
		Speedup:         r.Speedup,
		SpeedupLow:      r.SpeedupCI.Lo(),
		SpeedupHigh:     r.SpeedupCI.Hi(),
		R:               r.R,
		BusUtilization:  r.UBus,
		MemUtilization:  r.UMem,
		ObservedAmod:    r.Observed.Amod,
		ObservedCsupply: r.Observed.Csupply,
		MeanResponse:    r.MeanResponse,
		P95Response:     r.P95Response,
	}, nil
}

// RunExperimentContext is RunExperiment with cancellation: the GTPN and
// simulator stages inside the experiment check ctx periodically.
func RunExperimentContext(ctx context.Context, id string, w io.Writer, gtpnMaxN int, simCycles int64) (err error) {
	defer guard(&err)
	e, ok := exp.ByID(id)
	if !ok {
		return fmt.Errorf("%w: unknown experiment %q (have %v)", ErrInvalidInput, id, Experiments())
	}
	if gtpnMaxN <= 0 {
		gtpnMaxN = -1
	}
	rep, err := e.Run(exp.RunConfig{Ctx: ctx, GTPNMaxN: gtpnMaxN, SimCycles: simCycles})
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}
