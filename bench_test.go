package snoopmva

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation (regenerating the artifact end to end), the solution-cost
// benchmarks behind the paper's "seconds, not hours" claim, and ablation
// benchmarks for the modeling ingredients DESIGN.md calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Artifact benches use a trimmed experiment configuration (detailed
// comparator capped at N=2, short simulations) so the suite completes in
// seconds; cmd/paperrepro runs the full-size versions.

import (
	"io"
	"testing"

	"snoopmva/internal/cachesim"
	"snoopmva/internal/exp"
	"snoopmva/internal/fit"
	"snoopmva/internal/gtpnmodel"
	"snoopmva/internal/hierarchy"
	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
	"snoopmva/internal/protocol"
	"snoopmva/internal/sensitivity"
	"snoopmva/internal/trace"
	"snoopmva/internal/workload"
)

// benchCfg trims the expensive components for benchmarking.
var benchCfg = exp.RunConfig{GTPNMaxN: 2, SimCycles: 20000, Seed: 2}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact (DESIGN.md §5) ---

func BenchmarkTable41a(b *testing.B)          { benchExperiment(b, "tab4.1a") }
func BenchmarkTable41b(b *testing.B)          { benchExperiment(b, "tab4.1b") }
func BenchmarkTable41c(b *testing.B)          { benchExperiment(b, "tab4.1c") }
func BenchmarkFigure41(b *testing.B)          { benchExperiment(b, "fig4.1") }
func BenchmarkBusUtilization(b *testing.B)    { benchExperiment(b, "busutil") }
func BenchmarkStressTest(b *testing.B)        { benchExperiment(b, "stress") }
func BenchmarkProcessingPower(b *testing.B)   { benchExperiment(b, "power") }
func BenchmarkBusUtilKEWP85(b *testing.B)     { benchExperiment(b, "kewp85") }
func BenchmarkAmodSensitivity(b *testing.B)   { benchExperiment(b, "arba86") }
func BenchmarkAsymptotic(b *testing.B)        { benchExperiment(b, "asymptotic") }
func BenchmarkSolveCostArtifact(b *testing.B) { benchExperiment(b, "solvecost") }

// --- solver-cost benchmarks (Section 3.2's claim) ---

// BenchmarkSolverScaling shows the MVA solve cost is flat in system size.
func BenchmarkSolverScaling(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		b.Run(byN(n), func(b *testing.B) {
			m := mva.Model{Workload: workload.AppendixA(workload.Sharing5)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Solve(n, mva.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGTPNStateSpace shows the detailed model's reachability graph —
// and therefore its solution cost — exploding with system size, lumped
// (polynomial) vs per-processor (exponential).
func BenchmarkGTPNStateSpace(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run("lumped-"+byN(n), func(b *testing.B) {
			cfg := gtpnmodel.Config{Workload: workload.AppendixA(workload.Sharing5), N: n}
			states := 0
			for i := 0; i < b.N; i++ {
				var err error
				states, err = gtpnmodel.StateCount(cfg, false, petri.Options{MaxStates: 2000000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(states), "states")
		})
	}
	for _, n := range []int{1, 2, 3} {
		b.Run("perproc-"+byN(n), func(b *testing.B) {
			cfg := gtpnmodel.Config{Workload: workload.AppendixA(workload.Sharing5), N: n}
			states := 0
			for i := 0; i < b.N; i++ {
				var err error
				states, err = gtpnmodel.StateCount(cfg, true, petri.Options{MaxStates: 2000000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkGTPNSolve times the full detailed solution at small N.
func BenchmarkGTPNSolve(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(byN(n), func(b *testing.B) {
			cfg := gtpnmodel.Config{Workload: workload.AppendixA(workload.Sharing5), N: n}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gtpnmodel.Solve(cfg, petri.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures detailed-simulation throughput
// (cycles simulated per wall-second scales the whole study).
func BenchmarkSimulator(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(byN(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := cachesim.Run(cachesim.Config{
					N:             n,
					Protocol:      protocol.Illinois,
					Workload:      workload.AppendixA(workload.Sharing5),
					Seed:          uint64(i + 1),
					WarmupCycles:  2000,
					MeasureCycles: 20000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benchmarks: each reports the speedup estimate with one
// modeling ingredient removed, quantifying its contribution (DESIGN.md §5,
// "ablation benches") ---

func benchAblation(b *testing.B, opts mva.Options) {
	b.Helper()
	m := mva.Model{Workload: workload.AppendixA(workload.Sharing20)}
	var last mva.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = m.Solve(10, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Speedup, "speedup")
}

func BenchmarkAblationFullModel(b *testing.B) {
	benchAblation(b, mva.Options{})
}

func BenchmarkAblationNoCacheInterference(b *testing.B) {
	benchAblation(b, mva.Options{NoCacheInterference: true})
}

func BenchmarkAblationNoMemoryInterference(b *testing.B) {
	benchAblation(b, mva.Options{NoMemoryInterference: true})
}

func BenchmarkAblationNoResidualLife(b *testing.B) {
	benchAblation(b, mva.Options{NoResidualLife: true})
}

func BenchmarkAblationExponentialBus(b *testing.B) {
	benchAblation(b, mva.Options{ExponentialBus: true})
}

func BenchmarkAblationNoArrivalCorrection(b *testing.B) {
	benchAblation(b, mva.Options{NoArrivalCorrection: true})
}

func byN(n int) string {
	switch {
	case n >= 10000:
		return "N10000"
	case n >= 1000:
		return "N1000"
	case n >= 100:
		return "N100"
	default:
		digits := []byte{'N'}
		if n >= 10 {
			digits = append(digits, byte('0'+n/10))
		}
		digits = append(digits, byte('0'+n%10))
		return string(digits)
	}
}

// --- extension benchmarks ---

// BenchmarkHierarchical measures the two-level model's solve cost across
// cluster shapes (still microseconds — the point of the technique).
func BenchmarkHierarchical(b *testing.B) {
	for _, shape := range [][2]int{{4, 4}, {8, 8}, {16, 16}} {
		b.Run(byN(shape[0]*shape[1]), func(b *testing.B) {
			cfg := hierarchy.Config{
				Clusters:           shape[0],
				PerCluster:         shape[1],
				Workload:           workload.AppendixA(workload.Sharing5),
				GlobalMissFraction: 0.1,
				GlobalBcFraction:   0.05,
			}
			b.ReportAllocs()
			var last hierarchy.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = hierarchy.Solve(cfg, hierarchy.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Speedup, "speedup")
		})
	}
}

// BenchmarkAdaptiveSwitch compares simulated update traffic with and
// without the RWB competitive update/invalidate switch.
func BenchmarkAdaptiveSwitch(b *testing.B) {
	for _, threshold := range []int{0, 2} {
		name := "pure-dragon"
		if threshold > 0 {
			name = "adaptive-k2"
		}
		b.Run(name, func(b *testing.B) {
			var updates int64
			for i := 0; i < b.N; i++ {
				res, err := cachesim.Run(cachesim.Config{
					N:                 8,
					Protocol:          protocol.Dragon,
					Workload:          workload.AppendixA(workload.Sharing20),
					Seed:              uint64(i + 1),
					WarmupCycles:      2000,
					MeasureCycles:     20000,
					AdaptiveThreshold: threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				updates = res.Observed.Updates
			}
			b.ReportMetric(float64(updates), "updates")
		})
	}
}

// BenchmarkTraceFit measures the measurement-loop cost: trace generation
// plus parameter estimation.
func BenchmarkTraceFit(b *testing.B) {
	g, err := trace.NewGenerator(trace.GeneratorConfig{
		N: 4, Workload: workload.AppendixA(workload.Sharing5), Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	refs := make([]trace.Ref, 100000)
	for i := range refs {
		refs[i], _ = g.Next(i % 4)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fit.Fit(refs, fit.Config{N: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity measures the tornado-analysis cost (a full
// elasticity ranking is ~30 MVA solves).
func BenchmarkSensitivity(b *testing.B) {
	study := sensitivity.Study{
		Model:  mva.Model{Workload: workload.AppendixA(workload.Sharing5)},
		N:      20,
		Metric: sensitivity.Speedup,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := study.Elasticities(0.02); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSplitTransaction reports the speedup with a
// split-transaction bus — the architectural what-if the late-80s designs
// moved toward — against the paper's circuit-switched bus.
func BenchmarkAblationSplitTransaction(b *testing.B) {
	benchAblation(b, mva.Options{SplitTransactionBus: true})
}
