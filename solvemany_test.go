package snoopmva

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// randBatch builds a mixed SolveMany batch over seeded random workloads:
// several configurations interleaved out of order, so the grouped batch
// path has to reassemble runs and map results back to input order.
func randBatch(t *testing.T, rng *rand.Rand, points int) []SolveInput {
	t.Helper()
	protos := []Protocol{Illinois(), Berkeley(), WriteOnce(), Dragon()}
	configs := make([]SolveInput, 3)
	for i := range configs {
		configs[i] = SolveInput{
			Protocol: protos[rng.Intn(len(protos))],
			Workload: randWorkload(t, rng),
		}
	}
	batch := make([]SolveInput, points)
	for i := range batch {
		in := configs[rng.Intn(len(configs))]
		in.N = 1 + rng.Intn(24)
		batch[i] = in
	}
	return batch
}

// TestSolveManyMatchesSequentialSolve is the batched-API contract: the
// grouped, scratch-sharing batch solve returns bitwise-identical results
// to a sequential loop of independent SolveWith calls.
func TestSolveManyMatchesSequentialSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for round := 0; round < 5; round++ {
		batch := randBatch(t, rng, 32)
		got, err := SolveMany(batch)
		if err != nil {
			t.Fatalf("round %d: SolveMany: %v", round, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("round %d: got %d results for %d inputs", round, len(got), len(batch))
		}
		for i, in := range batch {
			want, err := SolveWith(in.Protocol, in.Workload, in.Timing, in.N, in.Options)
			if err != nil {
				t.Fatalf("round %d: sequential solve %d: %v", round, i, err)
			}
			if got[i] != want {
				t.Fatalf("round %d point %d (N=%d): batch %+v != sequential %+v", round, i, in.N, got[i], want)
			}
		}
	}
}

func TestSolveManyFailFast(t *testing.T) {
	batch := []SolveInput{
		{Protocol: Illinois(), Workload: AppendixA(Sharing5), N: 4},
		{Protocol: Illinois(), Workload: AppendixA(Sharing5), N: 0}, // invalid size
	}
	if _, err := SolveMany(batch); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("SolveMany with invalid size = %v, want ErrInvalidInput", err)
	}

	bad := Workload{} // fails validation inside the solver
	batch[1] = SolveInput{Protocol: Illinois(), Workload: bad, N: 4}
	if _, err := SolveMany(batch); err == nil {
		t.Fatal("SolveMany with invalid workload succeeded")
	}
}

func TestSolveManyEmptyBatch(t *testing.T) {
	out, err := SolveMany(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("SolveMany(nil) = %v, %v", out, err)
	}
}

// TestSolveManyRaceStorm hammers the pooled solver scratch from many
// goroutines (run under -race): concurrent batches must not bleed state
// across solves through the pool.
func TestSolveManyRaceStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	batch := randBatch(t, rng, 16)
	want, err := SolveMany(batch)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := SolveMany(batch)
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- errors.New("cross-solve state bleed: batch result diverged under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedSolveManyMatchesAndCaches checks the cached batch: a cold
// batch equals the uncached batch bitwise, a repeat is served entirely
// from the cache, and single-point lookups hit the entries the batch
// published.
func TestCachedSolveManyMatchesAndCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(3011))
	batch := randBatch(t, rng, 24)
	want, err := SolveMany(batch)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCachedSolver(0)
	got, err := c.SolveMany(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: cached batch %+v != uncached %+v", i, got[i], want[i])
		}
	}

	h0 := c.Stats().Hits
	again, err := c.SolveMany(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("point %d: warm cached batch diverged", i)
		}
	}
	if hits := c.Stats().Hits - h0; hits != uint64(len(batch)) {
		t.Fatalf("warm batch scored %d hits, want %d", hits, len(batch))
	}

	in := batch[0]
	r, err := c.SolveWith(in.Protocol, in.Workload, in.Timing, in.N, in.Options)
	if err != nil {
		t.Fatal(err)
	}
	if r != want[0] {
		t.Fatal("single-point solve missed the entry the batch published")
	}
}

// TestCachedSolveHitPathIsAllocationFree pins the tentpole: a resident
// cached solve — key encode, cache probe, result return — performs zero
// heap allocations.
func TestCachedSolveHitPathIsAllocationFree(t *testing.T) {
	c := NewCachedSolver(0)
	p, w := Illinois(), AppendixA(Sharing5)
	if _, err := c.Solve(p, w, 8); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.SolveWithContext(ctx, p, w, Timing{}, 8, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v/op, want 0", allocs)
	}
}
