package snoopmva

// Smoke tests for the runnable examples: build each one and run it to
// completion, checking for a sentinel line in its output. This keeps the
// examples from rotting as the API evolves.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests build and run binaries")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	sentinels := map[string]string{
		"quickstart":      "speedup",
		"designspace":     "design ranking",
		"protocolcompare": "Dragon",
		"stresstest":      "worst relative error",
		"hierarchical":    "best shape",
		"measurement":     "most influential parameters",
		"heterogeneous":   "Protocol migration",
		"cachesizing":     "capacity needed",
	}
	bin := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		want, ok := sentinels[name]
		if !ok {
			t.Errorf("example %q has no smoke-test sentinel — add one", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(exe).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		})
	}
}
