package snoopmva

import (
	"testing"

	"snoopmva/internal/stats"
)

// This file pins the headline numbers published in EXPERIMENTS.md against
// fresh solves: if a model change moves any of them, the experiment
// reports are stale and the change is either a bug or needs EXPERIMENTS.md
// regenerated alongside it. The tolerance is absolute 1e-3 — half a unit
// in the last digit EXPERIMENTS.md prints, loose enough for cross-platform
// floating-point variation, tight enough that any real model change trips
// it.
const goldenTol = 1e-3

func goldenSolve(t *testing.T, p Protocol, w Workload, n int) Result {
	t.Helper()
	r, err := Solve(p, w, n)
	if err != nil {
		t.Fatalf("golden solve %v N=%d: %v", p, n, err)
	}
	return r
}

// TestGoldenAsymptoticSpeedups pins the "asymptotic" experiment's S(20)
// and S(100) table (Section 4.1) — the large-N capability that motivated
// the MVA model.
func TestGoldenAsymptoticSpeedups(t *testing.T) {
	cases := []struct {
		name string
		p    Protocol
		s    Sharing
		s20  float64
		s100 float64
	}{
		{"WO/1%", WriteOnce(), Sharing1, 6.3866, 6.4903},
		{"WO/5%", WriteOnce(), Sharing5, 5.6156, 5.6776},
		{"WO/20%", WriteOnce(), Sharing20, 4.9295, 4.9538},
		{"WO+1/1%", WithMods(1), Sharing1, 7.7138, 7.6775},
		{"WO+1/5%", WithMods(1), Sharing5, 6.5572, 6.5173},
		{"WO+1/20%", WithMods(1), Sharing20, 5.5014, 5.4625},
		{"WO+1+4/1%", WithMods(1, 4), Sharing1, 7.7138, 7.6775},
		{"WO+1+4/5%", WithMods(1, 4), Sharing5, 7.6323, 7.6258},
		{"WO+1+4/20%", WithMods(1, 4), Sharing20, 7.8042, 7.8511},
	}
	for _, c := range cases {
		w := AppendixA(c.s)
		if got := goldenSolve(t, c.p, w, 20).Speedup; !stats.ApproxEq(got, c.s20, goldenTol) {
			t.Errorf("%s: S(20) = %.4f, EXPERIMENTS.md pins %.4f", c.name, got, c.s20)
		}
		if got := goldenSolve(t, c.p, w, 100).Speedup; !stats.ApproxEq(got, c.s100, goldenTol) {
			t.Errorf("%s: S(100) = %.4f, EXPERIMENTS.md pins %.4f", c.name, got, c.s100)
		}
	}
}

// TestGoldenArBa86Gap pins the "arba86" experiment (Section 4.4): at
// amod_p = 0.95 the modification-1 gain over Write-Once collapses from
// 1.2375 to 0.1001 speedup units — the paper's "roughly equal" claim.
func TestGoldenArBa86Gap(t *testing.T) {
	w := AppendixA(Sharing1)
	cases := []struct {
		amodP   float64
		wo, wo1 float64
	}{
		{0.7, 5.8097, 7.0471},
		{0.95, 6.9471, 7.0471},
	}
	for _, c := range cases {
		w.AmodPrivate = c.amodP
		wo := goldenSolve(t, WriteOnce(), w, 10).Speedup
		wo1 := goldenSolve(t, WithMods(1), w, 10).Speedup
		if !stats.ApproxEq(wo, c.wo, goldenTol) {
			t.Errorf("amod_p=%.2f: WO speedup %.4f, EXPERIMENTS.md pins %.4f", c.amodP, wo, c.wo)
		}
		if !stats.ApproxEq(wo1, c.wo1, goldenTol) {
			t.Errorf("amod_p=%.2f: WO+1 speedup %.4f, EXPERIMENTS.md pins %.4f", c.amodP, wo1, c.wo1)
		}
	}

	// The headline: the gain gap shrinks 1.2375 → 0.1001.
	w.AmodPrivate = 0.7
	wide := goldenSolve(t, WithMods(1), w, 10).Speedup - goldenSolve(t, WriteOnce(), w, 10).Speedup
	w.AmodPrivate = 0.95
	narrow := goldenSolve(t, WithMods(1), w, 10).Speedup - goldenSolve(t, WriteOnce(), w, 10).Speedup
	if !stats.ApproxEq(wide, 1.2375, goldenTol) || !stats.ApproxEq(narrow, 0.1001, goldenTol) {
		t.Errorf("mod-1 gain gap = %.4f → %.4f, EXPERIMENTS.md pins 1.2375 → 0.1001", wide, narrow)
	}
}

// TestGoldenBusUtilization pins the "busutil" experiment (Section 4.2):
// our MVA's U_bus at N=6, Write-Once, 5% sharing.
func TestGoldenBusUtilization(t *testing.T) {
	got := goldenSolve(t, WriteOnce(), AppendixA(Sharing5), 6).BusUtilization
	if !stats.ApproxEq(got, 0.7328, goldenTol) {
		t.Errorf("U_bus(N=6, WO, 5%%) = %.4f, EXPERIMENTS.md pins 0.7328", got)
	}
}

// TestGoldenProcessingPower pins the "power" experiment (Section 4.4):
// N·τ/R for mods 1+2+3 at N=9, 5% sharing, between the paper's MVA (4.32)
// and GTPN (4.1) values.
func TestGoldenProcessingPower(t *testing.T) {
	got := goldenSolve(t, Illinois(), AppendixA(Sharing5), 9).ProcessingPower
	if !stats.ApproxEq(got, 4.2451, goldenTol) {
		t.Errorf("processing power (1+2+3, N=9, 5%%) = %.4f, EXPERIMENTS.md pins 4.2451", got)
	}
	if got <= 4.1 || got >= 4.32 {
		t.Errorf("processing power %.4f outside the published bracket (4.1, 4.32)", got)
	}
}

// TestGoldenKEWP85BusLoad pins the "kewp85" experiment: Write-Once carries
// about 10% more bus load than WO+2+3 at ~99% sharing, N=8 (measured
// +10.1%).
func TestGoldenKEWP85BusLoad(t *testing.T) {
	// The experiment's workload: Appendix A 5% pushed to nearly all-shared
	// at light load, parameters taken verbatim (FixedParams), with the
	// write-hit premise the paper cites encoded as amod_sw 0.3 under WO vs
	// 0.38 under WO+2+3 (ownership retention).
	base := AppendixA(Sharing5)
	base.PPrivate, base.PSro, base.PSw = 0.01, 0.0, 0.99
	base.Tau = 30
	base.HSw = 0.9
	base.FixedParams = true

	wo := base
	wo.AmodSw = 0.3
	m23 := base
	m23.AmodSw = 0.38

	cases := []struct {
		p     Protocol
		w     Workload
		uBus  float64
		speed float64
	}{
		{WriteOnce(), wo, 0.3027, 7.5288},
		{WithMods(2, 3), m23, 0.2748, 7.5871},
	}
	for _, c := range cases {
		r := goldenSolve(t, c.p, c.w, 8)
		if !stats.ApproxEq(r.BusUtilization, c.uBus, goldenTol) {
			t.Errorf("%v: U_bus = %.4f, EXPERIMENTS.md pins %.4f", c.p, r.BusUtilization, c.uBus)
		}
		if !stats.ApproxEq(r.Speedup, c.speed, goldenTol) {
			t.Errorf("%v: speedup = %.4f, EXPERIMENTS.md pins %.4f", c.p, r.Speedup, c.speed)
		}
	}
	woU := goldenSolve(t, WriteOnce(), wo, 8).BusUtilization
	moddedU := goldenSolve(t, WithMods(2, 3), m23, 8).BusUtilization
	rel := woU/moddedU - 1
	if !stats.ApproxEq(rel, 0.1014, goldenTol) {
		t.Errorf("relative U_bus increase of WO over WO+2+3 = %.4f, EXPERIMENTS.md pins 0.1014", rel)
	}
}
