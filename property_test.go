package snoopmva

import (
	"math/rand"
	"testing"

	"snoopmva/internal/stats"
)

// This file is the property/metamorphic suite: instead of pinning point
// values (golden_regression_test.go does that), it asserts relations the
// paper derives analytically — protocol-modification dominance, speedup
// monotonicity below bus saturation, utilization bounds — over a cloud of
// randomized valid workloads, plus the implementation's own metamorphic
// contracts (cache-on ≡ cache-off, warm-start ≈ cold-start). The
// generator perturbs the Appendix A parameters rather than sampling
// uniformly: the paper's invariants are claims about plausible memory
// system behaviour, not about arbitrary points of the parameter cube.

// randWorkload perturbs a random Appendix A sharing level with bounded
// multiplicative noise, renormalizes the stream partition, and retries
// until Validate accepts the result. Deterministic per rng state.
func randWorkload(t *testing.T, rng *rand.Rand) Workload {
	t.Helper()
	sharings := []Sharing{Sharing1, Sharing5, Sharing20}
	for attempt := 0; attempt < 100; attempt++ {
		w := AppendixA(sharings[rng.Intn(len(sharings))])
		jitter := func(x float64) float64 { return x * (0.7 + 0.6*rng.Float64()) }
		prob := func(x float64) float64 {
			x = jitter(x)
			if x < 0.01 {
				x = 0.01
			}
			if x > 0.99 {
				x = 0.99
			}
			return x
		}
		w.Tau = 1 + jitter(w.Tau)
		w.PPrivate, w.PSro, w.PSw = prob(w.PPrivate), prob(w.PSro), prob(w.PSw)
		sum := w.PPrivate + w.PSro + w.PSw
		w.PPrivate /= sum
		w.PSro /= sum
		w.PSw /= sum
		w.HPrivate, w.HSro, w.HSw = prob(w.HPrivate), prob(w.HSro), prob(w.HSw)
		w.RPrivate, w.RSw = prob(w.RPrivate), prob(w.RSw)
		w.AmodPrivate, w.AmodSw = prob(w.AmodPrivate), prob(w.AmodSw)
		w.CsupplySro, w.CsupplySw = prob(w.CsupplySro), prob(w.CsupplySw)
		w.WbCsupply = prob(w.WbCsupply)
		w.RepP, w.RepSw = prob(w.RepP), prob(w.RepSw)
		if w.Validate() == nil {
			return w
		}
	}
	t.Fatal("workload generator failed to produce a valid sample in 100 attempts")
	return Workload{}
}

func propertyRounds(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 40
}

// TestPropertyModificationDominance: Section 4.1's ordering — the paper
// modifications remove bus work, so speedup must not decrease along
// WO → WO+1 → WO+1+2+3. What the model actually delivers, and what this
// test pins:
//
//   - On the Appendix A workloads, modification 1 strictly helps at every
//     sharing level and size; modifications 2+3 on top of it can wash out
//     (they trade write-through traffic for ownership transfers, and with
//     the Appendix A per-protocol parameter adjustments the measured dip
//     is ≤0.7%). The ladder is asserted strict for WO→WO+1 and within 1%
//     end to end.
//   - On arbitrary random workloads the ordering is asserted within 5%:
//     the MVA's documented few-percent approximation error plus the
//     parameter adjustments admit small inversions (measured worst ≈2%
//     below saturation), but a modification must never substantially hurt.
func TestPropertyModificationDominance(t *testing.T) {
	ladder := []Protocol{WriteOnce(), WithMods(1), Illinois()}

	for _, s := range []Sharing{Sharing1, Sharing5, Sharing20} {
		w := AppendixA(s)
		for _, n := range []int{2, 8, 32, 100} {
			wo, err := Solve(WriteOnce(), w, n)
			if err != nil {
				t.Fatalf("WO sharing %d%% N=%d: %v", s, n, err)
			}
			wo1, err := Solve(WithMods(1), w, n)
			if err != nil {
				t.Fatalf("WO+1 sharing %d%% N=%d: %v", s, n, err)
			}
			ill, err := Solve(Illinois(), w, n)
			if err != nil {
				t.Fatalf("Illinois sharing %d%% N=%d: %v", s, n, err)
			}
			if wo1.Speedup < wo.Speedup && !stats.ApproxEq(wo1.Speedup, wo.Speedup, 1e-6) {
				t.Errorf("sharing %d%% N=%d: WO+1 speedup %.9f < WO %.9f", s, n, wo1.Speedup, wo.Speedup)
			}
			if ill.Speedup < wo1.Speedup*(1-0.01) {
				t.Errorf("sharing %d%% N=%d: WO+1+2+3 speedup %.9f more than 1%% below WO+1 %.9f",
					s, n, ill.Speedup, wo1.Speedup)
			}
			if ill.Speedup < wo.Speedup && !stats.ApproxEq(ill.Speedup, wo.Speedup, 1e-6) {
				t.Errorf("sharing %d%% N=%d: WO+1+2+3 speedup %.9f < WO %.9f", s, n, ill.Speedup, wo.Speedup)
			}
		}
	}

	rng := rand.New(rand.NewSource(1))
	for round := 0; round < propertyRounds(t); round++ {
		w := randWorkload(t, rng)
		for _, n := range []int{2, 8, 32} {
			prev := -1.0
			for _, p := range ladder {
				r, err := Solve(p, w, n)
				if err != nil {
					t.Fatalf("round %d %v N=%d: %v", round, p, n, err)
				}
				if r.Speedup < prev*(1-0.05) {
					t.Errorf("round %d N=%d: %v speedup %.9f more than 5%% below predecessor %.9f (workload %+v)",
						round, n, p, r.Speedup, prev, w)
				}
				if r.Speedup > prev {
					prev = r.Speedup
				}
			}
		}
	}
}

// TestPropertySpeedupMonotoneBelowSaturation: adding processors cannot
// slow the system down while the bus still has headroom. Near saturation
// the paper's own Table 4.1(b) documents a small approximate-MVA
// overshoot, so the assertion deliberately stops once utilization
// approaches one.
func TestPropertySpeedupMonotoneBelowSaturation(t *testing.T) {
	const saturated = 0.9
	rng := rand.New(rand.NewSource(2))
	ns := make([]int, 32)
	for i := range ns {
		ns[i] = i + 1
	}
	for round := 0; round < propertyRounds(t); round++ {
		w := randWorkload(t, rng)
		rs, err := Sweep(WriteOnce(), w, ns)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].BusUtilization >= saturated {
				break // plateau region: overshoot artifact is documented
			}
			if rs[i].Speedup < rs[i-1].Speedup && !stats.ApproxEq(rs[i].Speedup, rs[i-1].Speedup, 1e-6) {
				t.Errorf("round %d: speedup fell %.9f → %.9f from N=%d to N=%d at U_bus=%.3f (workload %+v)",
					round, rs[i-1].Speedup, rs[i].Speedup, ns[i-1], ns[i], rs[i].BusUtilization, w)
			}
		}
	}
}

// TestPropertyUtilizationBounds: equations (7) and (12) are utilizations —
// every solved point must keep them inside [0,1] and all waits and
// response times non-negative.
func TestPropertyUtilizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < propertyRounds(t); round++ {
		w := randWorkload(t, rng)
		for _, p := range []Protocol{WriteOnce(), Synapse(), Berkeley(), Illinois(), Dragon()} {
			for _, n := range []int{1, 3, 16, 100} {
				r, err := Solve(p, w, n)
				if err != nil {
					t.Fatalf("round %d %v N=%d: %v", round, p, n, err)
				}
				if r.BusUtilization < 0 || r.BusUtilization > 1 {
					t.Errorf("round %d %v N=%d: U_bus = %v outside [0,1]", round, p, n, r.BusUtilization)
				}
				if r.MemUtilization < 0 || r.MemUtilization > 1 {
					t.Errorf("round %d %v N=%d: U_mem = %v outside [0,1]", round, p, n, r.MemUtilization)
				}
				if r.BusWait < 0 || r.MemWait < 0 || r.R <= 0 || r.Speedup <= 0 {
					t.Errorf("round %d %v N=%d: negative measure in %+v", round, p, n, r)
				}
				if r.ProcessingPower < 0 || r.ProcessingPower > float64(n) {
					t.Errorf("round %d %v N=%d: processing power %v outside [0,N]", round, p, n, r.ProcessingPower)
				}
			}
		}
	}
}

// TestPropertyCacheTransparent: the memo cache must be undetectable —
// CachedSolver.Solve agrees bitwise with the package-level Solve on both
// the miss path (stores what the solver returned) and the hit path
// (returns what it stored).
func TestPropertyCacheTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cs := NewCachedSolver(0)
	for round := 0; round < propertyRounds(t); round++ {
		w := randWorkload(t, rng)
		p := []Protocol{WriteOnce(), Illinois(), Dragon()}[rng.Intn(3)]
		n := 1 + rng.Intn(64)
		direct, err := Solve(p, w, n)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for pass := 0; pass < 2; pass++ { // miss, then hit
			got, err := cs.Solve(p, w, n)
			if err != nil {
				t.Fatalf("round %d pass %d: %v", round, pass, err)
			}
			if got != direct {
				t.Errorf("round %d pass %d: cached %+v != direct %+v", round, pass, got, direct)
			}
		}
	}
	if s := cs.Stats(); s.Hits != s.Misses {
		t.Errorf("miss/hit passes out of balance: %+v", s)
	}
}

// TestPropertyWarmStartAgreesWithCold: a warm-started sweep converges to
// the same fixed point as independent cold solves — the warm start moves
// the trajectory, never the answer (DESIGN.md §11 soundness argument).
func TestPropertyWarmStartAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ns := []int{1, 2, 4, 8, 16, 32, 64}
	for round := 0; round < propertyRounds(t); round++ {
		w := randWorkload(t, rng)
		warm, err := Sweep(Illinois(), w, ns)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, n := range ns {
			cold, err := Solve(Illinois(), w, n)
			if err != nil {
				t.Fatalf("round %d N=%d: %v", round, n, err)
			}
			if !stats.ApproxEq(warm[i].Speedup, cold.Speedup, 1e-7) ||
				!stats.ApproxEq(warm[i].R, cold.R, 1e-7) ||
				!stats.ApproxEq(warm[i].BusUtilization, cold.BusUtilization, 1e-7) ||
				!stats.ApproxEq(warm[i].MemUtilization, cold.MemUtilization, 1e-7) {
				t.Errorf("round %d N=%d: warm %+v vs cold %+v beyond tolerance", round, n, warm[i], cold)
			}
		}
	}
}
