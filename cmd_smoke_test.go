package snoopmva

// Smoke tests for the command-line tools: build each binary once and run it
// with small arguments, checking exit status and a sentinel in the output.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	tracePath := filepath.Join(t.TempDir(), "t.bin")
	journalPath := filepath.Join(t.TempDir(), "campaign.jsonl")

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"mvasolve", []string{"-protocol", "Dragon", "-sharing", "5", "-sweep", "1,4"}, "speedup"},
		{"mvasolve", []string{"-n", "4", "-explain"}, "equation 1"},
		{"mvasolve", []string{"-stress", "-n", "4"}, "speedup"},
		{"gtpnsolve", []string{"-sharing", "5", "-n", "2", "-compare"}, "states"},
		{"cachesim", []string{"-protocol", "Illinois", "-n", "4", "-cycles", "40000", "-compare"}, "Illinois"},
		{"paperrepro", []string{"-list"}, "tab4.1a"},
		{"paperrepro", []string{"-exp", "power", "-gtpn", "0", "-simcycles", "0"}, "4.32"},
		{"paperrepro", []string{"-exp", "power", "-gtpn", "0", "-simcycles", "0", "-json"}, "\"worst_rel_err\""},
		{"hiersolve", []string{"-total", "8", "-gmiss", "0.1"}, "clusters"},
		{"tracefit", []string{"-generate", "-refs", "30000", "-n", "2", "-out", tracePath, "-solve", "4"}, "fitted"},
		{"tracefit", []string{"-in", tracePath, "-n", "2", "-solve", "0"}, "p_private"},
		{"sensitivity", []string{"-n", "8"}, "h_private"},
		{"sensitivity", []string{"-sweep", "h_sw", "-values", "0.3,0.7"}, "h_sw"},
		{"protodoc", []string{"-protocol", "Berkeley"}, "OwnedShared"},
		{"protodoc", []string{"-mods", "1,4", "-format", "markdown"}, "update-write"},
		{"campaign", []string{"-protocols", "Illinois", "-sharing", "5", "-ns", "1..8",
			"-journal", journalPath}, "8 computed"},
		{"campaign", []string{"-protocols", "Illinois", "-sharing", "5", "-ns", "1..8",
			"-journal", journalPath, "-resume"}, "8 resumed"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name+"_"+strings.Join(c.args[:1], ""), func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, c.name), c.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s %v output missing %q:\n%s", c.name, c.args, c.want, out)
			}
		})
	}

	// Error paths exit non-zero.
	for _, c := range []struct {
		name string
		args []string
	}{
		{"mvasolve", []string{"-sharing", "7"}},
		{"paperrepro", []string{"-exp", "nonesuch"}},
		{"protodoc", []string{"-protocol", "nonesuch"}},
		{"hiersolve", []string{}},
		{"campaign", []string{"-resume"}}, // resume needs -journal
		{"campaign", []string{"-ns", "4..1"}},
	} {
		cmd := exec.Command(filepath.Join(bin, c.name), c.args...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("%s %v should fail:\n%s", c.name, c.args, out)
		}
	}
	_ = os.Remove(tracePath)
}
