package snoopmva

// Smoke tests for the command-line tools: build each binary once and run it
// with small arguments, checking exit status and a sentinel in the output.

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	tracePath := filepath.Join(t.TempDir(), "t.bin")
	journalPath := filepath.Join(t.TempDir(), "campaign.jsonl")

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"mvasolve", []string{"-protocol", "Dragon", "-sharing", "5", "-sweep", "1,4"}, "speedup"},
		{"mvasolve", []string{"-n", "4", "-explain"}, "equation 1"},
		{"mvasolve", []string{"-stress", "-n", "4"}, "speedup"},
		{"gtpnsolve", []string{"-sharing", "5", "-n", "2", "-compare"}, "states"},
		{"cachesim", []string{"-protocol", "Illinois", "-n", "4", "-cycles", "40000", "-compare"}, "Illinois"},
		{"paperrepro", []string{"-list"}, "tab4.1a"},
		{"paperrepro", []string{"-exp", "power", "-gtpn", "0", "-simcycles", "0"}, "4.32"},
		{"paperrepro", []string{"-exp", "power", "-gtpn", "0", "-simcycles", "0", "-json"}, "\"worst_rel_err\""},
		{"hiersolve", []string{"-total", "8", "-gmiss", "0.1"}, "clusters"},
		{"tracefit", []string{"-generate", "-refs", "30000", "-n", "2", "-out", tracePath, "-solve", "4"}, "fitted"},
		{"tracefit", []string{"-in", tracePath, "-n", "2", "-solve", "0"}, "p_private"},
		{"sensitivity", []string{"-n", "8"}, "h_private"},
		{"sensitivity", []string{"-sweep", "h_sw", "-values", "0.3,0.7"}, "h_sw"},
		{"protodoc", []string{"-protocol", "Berkeley"}, "OwnedShared"},
		{"protodoc", []string{"-mods", "1,4", "-format", "markdown"}, "update-write"},
		{"campaign", []string{"-protocols", "Illinois", "-sharing", "5", "-ns", "1..8",
			"-journal", journalPath}, "8 computed"},
		{"campaign", []string{"-protocols", "Illinois", "-sharing", "5", "-ns", "1..8",
			"-journal", journalPath, "-resume"}, "8 resumed"},
		{"snoopbench", []string{"-quick", "-conns", "4", "-rate", "2", "-batch", "2",
			"-out", "-"}, "batch_speedup_vs_json"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name+"_"+strings.Join(c.args[:1], ""), func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, c.name), c.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s %v output missing %q:\n%s", c.name, c.args, c.want, out)
			}
		})
	}

	// Error paths exit non-zero; where want is set, the flag-validation
	// message must name the offending flag so a user can act on it.
	for _, c := range []struct {
		name string
		args []string
		want string
	}{
		{"mvasolve", []string{"-sharing", "7"}, ""},
		{"paperrepro", []string{"-exp", "nonesuch"}, ""},
		{"protodoc", []string{"-protocol", "nonesuch"}, ""},
		{"hiersolve", []string{}, ""},
		{"campaign", []string{"-resume"}, ""}, // resume needs -journal
		{"campaign", []string{"-ns", "4..1"}, ""},
		{"campaignd", []string{}, "-workers is required"},
		{"campaignd", []string{"-workers", "wire://"}, "wire:// needs host:port"},
		{"campaignd", []string{"-workers", "wire://h:1?http=%zz"}, "-workers"},
		{"campaignd", []string{"-workers", "http://localhost:1", "-ns", "4..1"}, ""},
		{"snoopbench", []string{"-conns", "-1"}, "-conns must be >= 0"},
		{"snoopbench", []string{"-rate", "0"}, "-rate must be >= 1"},
		{"snoopbench", []string{"-batch", "2000"}, "-batch must be in 1.."},
		{"snoopbench", []string{"-addr", "nonsense"}, "-addr"},
		{"snoopbench", []string{"-addr", "127.0.0.1:1"}, "-addr needs -http"},
		{"snoopbench", []string{"-http", "http://localhost:1"}, "-http needs -addr"},
		{"snoopd", []string{"-wire-addr", "nonsense"}, "-wire-addr"},
		{"snoopd", []string{"-max-inflight", "-1"}, "-max-inflight"},
		{"snoopd", []string{"-max-inflight", "2", "-admission-target-ms", "0"}, "-admission-target-ms"},
	} {
		cmd := exec.Command(filepath.Join(bin, c.name), c.args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("%s %v should fail:\n%s", c.name, c.args, out)
			continue
		}
		if c.want != "" && !strings.Contains(string(out), c.want) {
			t.Errorf("%s %v error output missing %q:\n%s", c.name, c.args, c.want, out)
		}
	}

	// snoopd with -wire-addr: both listeners come up (wire first, so a bad
	// address is a clean validation exit) and SIGTERM drains both cleanly.
	t.Run("snoopd_wire_addr_graceful", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(bin, "snoopd"),
			"-addr", "127.0.0.1:0", "-wire-addr", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var lines []string
		ready := make(chan struct{})
		scanned := make(chan struct{})
		go func() {
			defer close(scanned)
			sc := bufio.NewScanner(stderr)
			listening, signaled := 0, false
			for sc.Scan() {
				lines = append(lines, sc.Text())
				if strings.Contains(sc.Text(), "listening on") {
					listening++
				}
				if listening == 2 && !signaled {
					signaled = true
					close(ready)
				}
			}
		}()
		select {
		case <-ready:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-scanned
			t.Fatalf("snoopd did not come up:\n%s", strings.Join(lines, "\n"))
		}
		// The listeners print before the signal handler installs; give it
		// a beat so SIGTERM is drained, not fatal.
		time.Sleep(200 * time.Millisecond)
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		<-scanned // drain stderr fully before Wait closes the pipe
		err = cmd.Wait()
		out := strings.Join(lines, "\n")
		if err != nil {
			t.Fatalf("snoopd exit after SIGTERM: %v\n%s", err, out)
		}
		if !strings.Contains(out, "wire listening on") || !strings.Contains(out, "drained, bye") {
			t.Errorf("snoopd output missing wire startup or drain lines:\n%s", out)
		}
	})
	_ = os.Remove(tracePath)
}
