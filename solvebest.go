package snoopmva

import (
	"context"
	"fmt"
	"strings"
	"time"

	"snoopmva/internal/gtpnmodel"
	"snoopmva/internal/petri"
)

// Method identifies which model produced a BestResult.
type Method string

// The three models, in decreasing fidelity (and decreasing cost to fail).
const (
	MethodGTPN       Method = "gtpn"
	MethodSimulation Method = "simulation"
	MethodMVA        Method = "mva"
)

// Budget bounds the expensive stages of SolveBest's degradation ladder.
// The zero value uses the defaults noted on each field.
type Budget struct {
	// MaxStates bounds the GTPN reachability graph (0 means 200000;
	// negative skips the GTPN stage entirely).
	MaxStates int
	// GTPNTimeout is the wall-clock budget of the GTPN stage (0 means no
	// deadline beyond the caller's ctx).
	GTPNTimeout time.Duration
	// SimCycles is the simulator's measurement window (0 means the
	// simulator default of 300000; negative skips the simulator stage).
	SimCycles int64
	// SimTimeout is the wall-clock budget of the simulator stage (0 means
	// no deadline beyond the caller's ctx).
	SimTimeout time.Duration
	// Seed drives the simulator stage (0 means 1).
	Seed uint64
}

// BestResult is the provenance-tagged outcome of SolveBest: the headline
// measures from whichever model the ladder landed on, plus that model's
// full result.
type BestResult struct {
	// Method names the model that produced the numbers.
	Method Method
	// Degraded is true when a higher-fidelity stage was attempted and
	// failed, so the numbers come from a cheaper model than requested.
	Degraded bool
	// FallbackReason records why each abandoned stage failed (empty when
	// Degraded is false).
	FallbackReason string

	// Headline measures, populated for every method.
	N              int
	Speedup        float64
	R              float64
	BusUtilization float64

	// Exactly one of the following is non-nil, matching Method.
	GTPN *DetailedResult
	Sim  *SimResult
	MVA  *Result
}

// SolveBest answers "the most accurate speedup estimate you can give me
// within this budget" by walking the repository's three models in
// decreasing fidelity: the exact GTPN solution within its state and time
// budget, then the cycle-level simulator within its cycle budget, then the
// (always-cheap) MVA model. A stage failure degrades to the next rung and
// is recorded in FallbackReason; cancellation of ctx aborts the whole
// ladder with ErrCanceled instead of degrading, and invalid input fails
// immediately with ErrInvalidInput since no model could accept it.
func SolveBest(ctx context.Context, p Protocol, w Workload, n int, b Budget) (best BestResult, err error) {
	defer guard(&err)
	defer func() {
		if err == nil {
			recordBestResult(best)
		}
	}()
	// Validate once up front: an input no model accepts must not burn the
	// GTPN and simulator budgets before failing.
	if _, err := model(p, w, Timing{}); err != nil {
		return BestResult{}, err
	}
	if n < 1 {
		return BestResult{}, fmt.Errorf("snoopmva: system size %d < 1: %w", n, ErrInvalidInput)
	}
	// A negative timeout is a caller bug, not a request for "no deadline":
	// reject it instead of silently running unbounded.
	if b.GTPNTimeout < 0 {
		return BestResult{}, fmt.Errorf("snoopmva: negative GTPNTimeout %v: %w", b.GTPNTimeout, ErrInvalidInput)
	}
	if b.SimTimeout < 0 {
		return BestResult{}, fmt.Errorf("snoopmva: negative SimTimeout %v: %w", b.SimTimeout, ErrInvalidInput)
	}

	var reasons []string
	abandon := func(stage string, err error) error {
		// Caller cancellation is not a degradation: once ctx has fired,
		// no later rung is allowed to run either. The cancellation sentinel
		// leads so errors.Is(err, ErrCanceled) holds even when the stage
		// itself failed for an unrelated reason first.
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("snoopmva: SolveBest %s stage: %w (stage error: %v)", stage, classify(cerr), err)
		}
		reasons = append(reasons, fmt.Sprintf("%s: %v", stage, err))
		return nil
	}

	if b.MaxStates >= 0 {
		gctx, cancel := boundedCtx(ctx, b.GTPNTimeout)
		g, gerr := solveDetailedBudgeted(gctx, p, w, n, b.MaxStates)
		cancel()
		if gerr == nil {
			return BestResult{
				Method: MethodGTPN,
				N:      g.N, Speedup: g.Speedup, R: g.R, BusUtilization: g.BusUtilization,
				GTPN: &g,
			}, nil
		}
		if err := abandon("gtpn", gerr); err != nil {
			return BestResult{}, err
		}
	}

	if b.SimCycles >= 0 {
		sctx, cancel := boundedCtx(ctx, b.SimTimeout)
		s, serr := SimulateContext(sctx, p, w, n, SimOptions{Seed: b.Seed, MeasureCycles: b.SimCycles})
		cancel()
		if serr == nil {
			return BestResult{
				Method:   MethodSimulation,
				Degraded: len(reasons) > 0, FallbackReason: strings.Join(reasons, "; "),
				N: s.N, Speedup: s.Speedup, R: s.R, BusUtilization: s.BusUtilization,
				Sim: &s,
			}, nil
		}
		if err := abandon("simulation", serr); err != nil {
			return BestResult{}, err
		}
	}

	m, merr := SolveContext(ctx, p, w, n)
	if merr != nil {
		if len(reasons) > 0 {
			return BestResult{}, fmt.Errorf("snoopmva: SolveBest exhausted all models (%s): mva: %w",
				strings.Join(reasons, "; "), merr)
		}
		return BestResult{}, merr
	}
	return BestResult{
		Method:   MethodMVA,
		Degraded: len(reasons) > 0, FallbackReason: strings.Join(reasons, "; "),
		N: m.N, Speedup: m.Speedup, R: m.R, BusUtilization: m.BusUtilization,
		MVA: &m,
	}, nil
}

// boundedCtx derives a deadline-bounded context when timeout is positive.
func boundedCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// solveDetailedBudgeted is SolveDetailedContext with an explicit state
// budget (the public entry point uses the engine default).
func solveDetailedBudgeted(ctx context.Context, p Protocol, w Workload, n, maxStates int) (DetailedResult, error) {
	if err := p.validate(); err != nil {
		return DetailedResult{}, err
	}
	g, err := gtpnmodel.SolveContext(ctx, gtpnmodel.Config{
		Workload:         w.internal(),
		Mods:             p.inner.Mods,
		RawParams:        w.FixedParams,
		WriteThroughBase: p.inner.WriteThroughBase,
		N:                n,
	}, petri.Options{MaxStates: maxStates})
	if err != nil {
		return DetailedResult{}, err
	}
	return DetailedResult{
		N: g.N, Speedup: g.Speedup, R: g.R, BusUtilization: g.UBus, States: g.States,
	}, nil
}
