package snoopmva

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/journal"
)

// mvaOnlyBudget skips the GTPN and simulator stages so campaign tests run
// in microseconds per point.
var mvaOnlyBudget = Budget{MaxStates: -1, SimCycles: -1}

// testGrid builds a small deterministic grid of points.
func testGrid(n int, b Budget) []CampaignPoint {
	protos := Protocols()
	w := AppendixA(Sharing5)
	pts := make([]CampaignPoint, n)
	for i := range pts {
		pts[i] = CampaignPoint{
			Protocol: protos[i%len(protos)],
			Workload: w,
			N:        1 + i%12,
			Budget:   b,
		}
	}
	return pts
}

// journalPoints parses a campaign journal and returns its point records
// by index, failing the test on duplicates.
func journalPoints(t *testing.T, path string) map[int]PointResult {
	t.Helper()
	j, info, err := journal.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()
	out := map[int]PointResult{}
	for i, p := range info.Payloads {
		var rec struct {
			Kind  string       `json:"kind"`
			Point *PointResult `json:"point"`
		}
		if err := json.Unmarshal(p, &rec); err != nil {
			t.Fatalf("journal record %d: %v", i, err)
		}
		if rec.Kind != "point" {
			continue
		}
		if _, dup := out[rec.Point.Index]; dup {
			t.Fatalf("journal double-counts point %d", rec.Point.Index)
		}
		out[rec.Point.Index] = *rec.Point
	}
	return out
}

func TestCampaignRunsAndResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	spec := CampaignSpec{
		Points:           testGrid(24, mvaOnlyBudget),
		Journal:          path,
		Workers:          4,
		BreakerThreshold: -1,
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.Computed != 24 || res.Resumed != 0 || res.Failed != 0 {
		t.Fatalf("first run: %+v", res)
	}
	for i, pr := range res.Results {
		if pr.Index != i || pr.Err != "" || pr.Method != MethodMVA || pr.Speedup <= 0 {
			t.Fatalf("point %d: %+v", i, pr)
		}
	}
	if got := journalPoints(t, path); len(got) != 24 {
		t.Fatalf("journal has %d points, want 24", len(got))
	}

	// A second run without Resume must refuse the populated journal.
	if _, err := RunCampaign(context.Background(), spec); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("overwrite without Resume: err = %v, want ErrInvalidInput", err)
	}

	// With Resume, every point is served from the journal and nothing is
	// recomputed.
	spec.Resume = true
	res2, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res2.Computed != 0 || res2.Resumed != 24 {
		t.Fatalf("resume run: %+v", res2)
	}
	for i, pr := range res2.Results {
		if pr.Speedup != res.Results[i].Speedup || !pr.Resumed {
			t.Fatalf("resumed point %d diverged: %+v vs %+v", i, pr, res.Results[i])
		}
	}
}

func TestCampaignResumeRefusesDifferentSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	spec := CampaignSpec{Points: testGrid(4, mvaOnlyBudget), Journal: path, BreakerThreshold: -1}
	if _, err := RunCampaign(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Resume = true
	other.Points = testGrid(5, mvaOnlyBudget)
	if _, err := RunCampaign(context.Background(), other); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("mismatched resume: err = %v, want ErrInvalidInput", err)
	}
}

func TestCampaignEmptySpecRejected(t *testing.T) {
	if _, err := RunCampaign(context.Background(), CampaignSpec{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("empty spec: %v", err)
	}
	if _, err := RunCampaign(context.Background(), CampaignSpec{Points: testGrid(1, mvaOnlyBudget), Resume: true}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("resume without journal: %v", err)
	}
}

func TestCampaignTransientFaultsAreRetried(t *testing.T) {
	var calls atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		PointFault: func(index, attempt int) error {
			calls.Add(1)
			if index == 3 && attempt <= 2 {
				return fmt.Errorf("injected transient at point %d attempt %d", index, attempt)
			}
			if index == 5 {
				return fmt.Errorf("injected persistent transient at point %d", index)
			}
			return nil
		},
	})
	defer restore()

	spec := CampaignSpec{
		Points:           testGrid(8, mvaOnlyBudget),
		Workers:          1,
		BreakerThreshold: -1,
		Retry:            CampaignRetry{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 11},
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if got := res.Results[3]; got.Attempts != 3 || got.Err != "" || got.Method != MethodMVA {
		t.Fatalf("transient point not healed by retry: %+v", got)
	}
	// Point 5 exhausts its budget: recorded as failed, campaign continues.
	if got := res.Results[5]; got.Attempts != 3 || got.Err == "" {
		t.Fatalf("persistent point: %+v", got)
	}
	if res.Failed != 1 || res.Computed != 8 {
		t.Fatalf("aggregate: %+v", res)
	}
	// Permanent sibling points were attempted exactly once each.
	if got := res.Results[0]; got.Attempts != 1 {
		t.Fatalf("healthy point retried: %+v", got)
	}
}

func TestCampaignPermanentErrorsAreNotRetried(t *testing.T) {
	grid := testGrid(4, mvaOnlyBudget)
	grid[2].Workload.PPrivate = 2.5 // invalid: stream partition broken
	spec := CampaignSpec{
		Points:           grid,
		Workers:          1,
		BreakerThreshold: -1,
		Retry:            CampaignRetry{MaxAttempts: 4, BaseDelay: time.Microsecond},
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	got := res.Results[2]
	if got.Err == "" || got.Attempts != 1 {
		t.Fatalf("invalid-input point should fail permanently on attempt 1: %+v", got)
	}
	if !strings.Contains(got.Err, "invalid input") {
		t.Fatalf("error lost its class: %q", got.Err)
	}
}

func TestCampaignWatchdogTimesOutStuckStage(t *testing.T) {
	restore := faultinject.Activate(&faultinject.Set{
		SimSlowCycle: func(int64) { time.Sleep(20 * time.Millisecond) },
	})
	defer restore()

	pts := testGrid(1, Budget{MaxStates: -1, SimCycles: 50000})
	spec := CampaignSpec{
		Points:           pts,
		Workers:          1,
		BreakerThreshold: -1,
		PointTimeout:     30 * time.Millisecond,
		Retry:            CampaignRetry{MaxAttempts: 2, BaseDelay: time.Microsecond},
	}
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	got := res.Results[0]
	if got.Err == "" || !strings.Contains(got.Err, "watchdog") {
		t.Fatalf("stuck stage not converted to typed timeout: %+v", got)
	}
	if got.Attempts != 2 {
		t.Fatalf("watchdog timeout should be retryable: %+v", got)
	}
}

func TestCampaignCancellationLeavesResumableJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	restore := faultinject.Activate(&faultinject.Set{
		MVAEnter: func(int) {
			if done.Add(1) == 10 {
				cancel()
			}
		},
	})
	spec := CampaignSpec{
		Points:           testGrid(40, mvaOnlyBudget),
		Journal:          path,
		Workers:          2,
		BreakerThreshold: -1,
	}
	_, err := RunCampaign(ctx, spec)
	restore()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled campaign: err = %v, want ErrCanceled", err)
	}
	finished := len(journalPoints(t, path))
	if finished >= 40 {
		t.Fatalf("cancellation did not stop the campaign (%d points)", finished)
	}

	spec.Resume = true
	res, err := RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if res.Resumed != finished || res.Computed != 40-finished || res.Failed != 0 {
		t.Fatalf("resume accounting: %+v (journaled %d)", res, finished)
	}
	if got := len(journalPoints(t, path)); got != 40 {
		t.Fatalf("final journal has %d points, want 40", got)
	}
}
