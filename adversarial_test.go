package snoopmva

import (
	"errors"
	"math"
	"testing"
)

// Adversarial workloads: every entry must come back as either a typed
// error or a finite result — never NaN, never a panic escaping the API.
func adversarialWorkloads() map[string]Workload {
	zeroHits := AppendixA(Sharing5)
	zeroHits.HPrivate, zeroHits.HSro, zeroHits.HSw = 0, 0, 0

	badPartition := AppendixA(Sharing5)
	badPartition.PSw = 0.9 // streams now sum to 1.85

	negativeProb := AppendixA(Sharing5)
	negativeProb.CsupplySw = -0.25

	nanTau := AppendixA(Sharing5)
	nanTau.Tau = math.NaN()

	infTau := AppendixA(Sharing5)
	infTau.Tau = math.Inf(1)

	zeroTau := AppendixA(Sharing5) // back-to-back requests, bus saturated
	zeroTau.Tau = 0

	allShared := AppendixA(Sharing20)
	allShared.PPrivate, allShared.PSro, allShared.PSw = 0, 0.5, 0.5
	allShared.HSw = 0.05

	return map[string]Workload{
		"zero hit rates":      zeroHits,
		"partition sums to 2": badPartition,
		"negative csupply":    negativeProb,
		"NaN tau":             nanTau,
		"Inf tau":             infTau,
		"zero tau":            zeroTau,
		"all shared, low hit": allShared,
		"stress workload":     StressWorkload(),
	}
}

func checkFinite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want finite", name, v)
	}
}

func TestSolveAdversarialWorkloads(t *testing.T) {
	for name, w := range adversarialWorkloads() {
		w := w
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 10, 1000} {
				r, err := Solve(WriteOnce(), w, n)
				if err != nil {
					// Failure is acceptable only as a classified error.
					if !errors.Is(err, ErrInvalidInput) && !errors.Is(err, ErrDiverged) &&
						!errors.Is(err, ErrNoConvergence) {
						t.Errorf("N=%d: untyped error %v", n, err)
					}
					continue
				}
				checkFinite(t, "Speedup", r.Speedup)
				checkFinite(t, "R", r.R)
				checkFinite(t, "BusUtilization", r.BusUtilization)
				checkFinite(t, "MemUtilization", r.MemUtilization)
				checkFinite(t, "BusWait", r.BusWait)
				if r.R <= 0 {
					t.Errorf("N=%d: R = %v, want > 0", n, r.R)
				}
				if r.BusUtilization < 0 || r.BusUtilization > 1+1e-9 {
					t.Errorf("N=%d: bus utilization %v outside [0,1]", n, r.BusUtilization)
				}
			}
		})
	}
}

func TestSimulateAdversarialWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep in -short mode")
	}
	opts := SimOptions{Seed: 3, WarmupCycles: -1, MeasureCycles: 20000}
	for name, w := range adversarialWorkloads() {
		w := w
		t.Run(name, func(t *testing.T) {
			r, err := Simulate(WriteOnce(), w, 4, opts)
			if err != nil {
				if !errors.Is(err, ErrInvalidInput) {
					t.Errorf("untyped error %v", err)
				}
				return
			}
			checkFinite(t, "Speedup", r.Speedup)
			checkFinite(t, "R", r.R)
			checkFinite(t, "BusUtilization", r.BusUtilization)
			for i, v := range r.MeanResponse {
				checkFinite(t, "MeanResponse", v)
				_ = i
			}
		})
	}
}

// The saturated extreme: N=1000 processors on one bus. The MVA model must
// produce a finite, sane answer (bus-bound: speedup ≈ sustainable customers).
func TestSolveSaturatedN1000(t *testing.T) {
	for _, mk := range []struct {
		name string
		p    Protocol
	}{
		{"Write-Once", WriteOnce()},
		{"Illinois", Illinois()},
		{"Write-Through", WriteThrough()},
	} {
		t.Run(mk.name, func(t *testing.T) {
			r, err := Solve(mk.p, AppendixA(Sharing20), 1000)
			if err != nil {
				t.Fatal(err)
			}
			checkFinite(t, "Speedup", r.Speedup)
			checkFinite(t, "R", r.R)
			if r.Speedup <= 0 || r.Speedup > 1000 {
				t.Errorf("Speedup = %v, want in (0, 1000]", r.Speedup)
			}
			if r.BusUtilization < 0.9 {
				t.Errorf("bus utilization %v at N=1000, expected saturation", r.BusUtilization)
			}
		})
	}
}

// Simulator parameter edge cases must be rejected as invalid input, not
// panic and not spin forever.
func TestSimulateRejectsBadOptions(t *testing.T) {
	w := AppendixA(Sharing5)
	cases := map[string]SimOptions{
		"negative measure cycles": {MeasureCycles: -5},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Simulate(WriteOnce(), w, 4, opts); !errors.Is(err, ErrInvalidInput) {
				t.Errorf("err = %v, want ErrInvalidInput", err)
			}
		})
	}
	t.Run("zero processors", func(t *testing.T) {
		if _, err := Simulate(WriteOnce(), w, 0, SimOptions{MeasureCycles: 1000}); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
}
