package snoopmva

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestCompareErrorShapeUnified asserts that the serial Compare, the
// parallel CompareParallelContext and the cached CachedSolver.Compare
// produce the same error shape: every protocol is attempted, each failure
// is wrapped as "snoopmva: <protocol>: ..." and the failures are joined,
// so errors.Is classification and per-protocol attribution work
// identically through all three paths.
func TestCompareErrorShapeUnified(t *testing.T) {
	w := AppendixA(Sharing5)
	// Two invalid protocols among valid ones: all must be attempted and
	// both failures reported.
	ps := []Protocol{WriteOnce(), WithMods(9), Illinois(), WithMods(7)}

	serialRes, serialErr := Compare(ps, w, 8)
	parallelRes, parallelErr := CompareParallelContext(context.Background(), ps, w, 8)
	cachedRes, cachedErr := NewCachedSolver(0).Compare(ps, w, 8)

	for name, got := range map[string]error{
		"Compare": serialErr, "CompareParallelContext": parallelErr, "CachedSolver.Compare": cachedErr,
	} {
		if got == nil {
			t.Fatalf("%s: expected an error for invalid protocols", name)
		}
		if !errors.Is(got, ErrInvalidInput) {
			t.Errorf("%s: errors.Is(err, ErrInvalidInput) is false: %v", name, got)
		}
		for _, frag := range []string{"snoopmva: ", WithMods(9).String(), WithMods(7).String()} {
			if !strings.Contains(got.Error(), frag) {
				t.Errorf("%s: error %q does not name %q", name, got, frag)
			}
		}
	}
	if serialRes != nil || parallelRes != nil || cachedRes != nil {
		t.Error("failed comparisons must not return partial results")
	}

	// Identical inputs must produce the identical joined message through
	// every path — the unification this test pins.
	if serialErr.Error() != parallelErr.Error() {
		t.Errorf("serial and parallel error text diverge:\n  serial:   %v\n  parallel: %v", serialErr, parallelErr)
	}
	if serialErr.Error() != cachedErr.Error() {
		t.Errorf("serial and cached error text diverge:\n  serial: %v\n  cached: %v", serialErr, cachedErr)
	}

	// And on success all three agree exactly.
	ok := []Protocol{WriteOnce(), Illinois(), Dragon()}
	a, err := Compare(ok, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareParallelContext(context.Background(), ok, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCachedSolver(0).Compare(ok, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ok {
		if a[i] != b[i] || a[i] != c[i] {
			t.Errorf("%v: results diverge across paths: %+v / %+v / %+v", ok[i], a[i], b[i], c[i])
		}
	}
}
