package snoopmva

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"snoopmva/internal/markov"
	"snoopmva/internal/mva"
	"snoopmva/internal/petri"
	"snoopmva/internal/workload"
)

// The error taxonomy of the public API. Every error returned by the
// package-level solver entry points wraps exactly one of these sentinels
// (or is a *PanicError from a recovered internal panic), so callers can
// classify failures with errors.Is and react per class — reject invalid
// configurations, retry with damping, fall back to a cheaper model, or
// propagate cancellation.
var (
	// ErrInvalidInput marks caller-supplied model input that fails
	// validation: probabilities outside [0,1], stream partitions that do
	// not sum to one, non-positive system sizes, bad protocol modification
	// sets, and the like.
	ErrInvalidInput = errors.New("snoopmva: invalid input")

	// ErrNoConvergence marks an iterative solver (the MVA fixed point or
	// the Markov power iteration) that exhausted its iteration budget
	// without reaching tolerance.
	ErrNoConvergence = errors.New("snoopmva: solver did not converge")

	// ErrDiverged marks a numerical blow-up: the MVA fixed point produced
	// a NaN or Inf iterate. errors.As against *mva.DivergenceError — via
	// the wrapped cause — exposes the offending iterate.
	ErrDiverged = errors.New("snoopmva: solver diverged")

	// ErrStateExplosion marks a GTPN reachability analysis that exceeded
	// its state budget — the failure mode that motivates the MVA model.
	ErrStateExplosion = errors.New("snoopmva: state space exploded")

	// ErrCanceled marks a solve stopped by context cancellation or
	// deadline expiry.
	ErrCanceled = errors.New("snoopmva: solve canceled")
)

// PanicError is a panic that escaped an internal package and was recovered
// at the public API boundary, converted into an error carrying the stack at
// the panic site. Its presence is a bug report: internal invariant
// violations are supposed to be unreachable.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("snoopmva: internal panic: %v", e.Value)
}

// classify wraps err with the public sentinel matching its internal cause.
// Errors already carrying a public sentinel pass through unchanged, so
// delegation chains do not double-wrap; unrecognized errors also pass
// through (they are not forced into a wrong class).
func classify(err error) error {
	if err == nil {
		return nil
	}
	for _, s := range []error{ErrInvalidInput, ErrNoConvergence, ErrDiverged, ErrStateExplosion, ErrCanceled} {
		if errors.Is(err, s) {
			return err
		}
	}
	switch {
	case errors.Is(err, workload.ErrInvalid):
		return fmt.Errorf("%w: %w", ErrInvalidInput, err)
	case errors.Is(err, mva.ErrDiverged):
		return fmt.Errorf("%w: %w", ErrDiverged, err)
	case errors.Is(err, mva.ErrNoConvergence), errors.Is(err, markov.ErrNoConvergence):
		return fmt.Errorf("%w: %w", ErrNoConvergence, err)
	case errors.Is(err, petri.ErrStateExplosion):
		return fmt.Errorf("%w: %w", ErrStateExplosion, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// guard is deferred by every public solver entry point: it converts an
// escaped panic into a *PanicError and maps the outgoing error onto the
// public taxonomy.
func guard(errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
	*errp = classify(*errp)
}
