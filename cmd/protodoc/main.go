// Command protodoc prints the complete state-transition table of a
// snooping protocol — the Section 2.2 prose made mechanical. The table is
// generated from the same state machine the simulator executes, so it is
// documentation that cannot drift.
//
// Examples:
//
//	protodoc -protocol Dragon
//	protodoc -mods 1,3
//	protodoc -all -format markdown
//	protodoc -all -verify          # model-check every protocol's coherence
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snoopmva/internal/protocol"
	"snoopmva/internal/tables"
)

func main() {
	var (
		protoName = flag.String("protocol", "Write-Once", "named protocol")
		mods      = flag.String("mods", "", "comma-separated modification numbers (overrides -protocol)")
		all       = flag.Bool("all", false, "print every named protocol")
		format    = flag.String("format", "text", "text or markdown")
		verify    = flag.Bool("verify", false, "model-check coherence: exhaustively prove the invariants over all reachable single-block states")
	)
	flag.Parse()

	var protos []protocol.Protocol
	switch {
	case *all:
		protos = protocol.Named()
	case *mods != "":
		var ms protocol.ModSet
		for _, part := range strings.Split(*mods, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 || v > 4 {
				fatal(fmt.Errorf("bad modification %q", part))
			}
			ms = ms.With(protocol.Mod(v))
		}
		if err := ms.Valid(); err != nil {
			fatal(err)
		}
		protos = []protocol.Protocol{{Name: ms.String(), Mods: ms}}
	default:
		p, ok := protocol.ByName(*protoName)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", *protoName))
		}
		protos = []protocol.Protocol{p}
	}

	if *verify {
		for _, p := range protos {
			for _, n := range []int{2, 3, 4} {
				if err := protocol.VerifyCoherence(p, n); err != nil {
					fmt.Printf("%-28s n=%d: VIOLATION: %v\n", p.String(), n, err)
					os.Exit(1)
				}
				fmt.Printf("%-28s n=%d: coherent (all reachable states verified)\n", p.String(), n)
			}
		}
		return
	}
	for _, p := range protos {
		tb := tables.New(fmt.Sprintf("%s — state-transition table", p.String()),
			"kind", "from", "event", "to", "action")
		for _, row := range p.TransitionTable() {
			tb.AddRow(row.Kind, row.From.String(), row.Event, row.To.String(), row.Action)
		}
		var err error
		if *format == "markdown" {
			err = tb.WriteMarkdown(os.Stdout)
		} else {
			err = tb.WriteASCII(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protodoc:", err)
	os.Exit(1)
}
