// Command hiersolve runs the hierarchical (two-level bus) MVA extension:
// cluster-shape sweeps and escalation sensitivity for clustered
// multiprocessors.
//
// Examples:
//
//	hiersolve -total 64 -gmiss 0.1 -gbc 0.05
//	hiersolve -clusters 8 -percluster 8 -gmiss 0.2
//	hiersolve -total 32 -protocol Dragon -scaled
package main

import (
	"flag"
	"fmt"
	"os"

	"snoopmva"
	"snoopmva/internal/tables"
)

func main() {
	var (
		protoName  = flag.String("protocol", "Write-Once", "named protocol")
		sharing    = flag.Int("sharing", 5, "Appendix A sharing level: 1, 5 or 20")
		clusters   = flag.Int("clusters", 0, "clusters (with -percluster; alternative to -total)")
		perCluster = flag.Int("percluster", 0, "processors per cluster")
		total      = flag.Int("total", 0, "total processors: sweep all factorizations")
		gmiss      = flag.Float64("gmiss", 0.1, "fraction of remote reads escalating to the global bus")
		gbc        = flag.Float64("gbc", 0.05, "fraction of broadcasts escalating to the global bus")
		gratio     = flag.Float64("gratio", 1, "global-bus speed ratio (>1 = slower global bus)")
		scaled     = flag.Bool("scaled", false, "scale escalation by the remote-sharer fraction (N-K)/(N-1)")
	)
	flag.Parse()

	if *sharing != 1 && *sharing != 5 && *sharing != 20 {
		fatal(fmt.Errorf("sharing must be 1, 5 or 20"))
	}
	w := snoopmva.AppendixA(snoopmva.Sharing(*sharing))
	proto, ok := snoopmva.ProtocolByName(*protoName)
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	base := snoopmva.HierarchicalConfig{
		GlobalMissFraction: *gmiss,
		GlobalBcFraction:   *gbc,
		GlobalSpeedRatio:   *gratio,
	}

	tb := tables.New(
		fmt.Sprintf("Hierarchical MVA — %s, %d%% sharing, gmiss=%.2f gbc=%.2f",
			proto.Name(), *sharing, *gmiss, *gbc),
		"clusters", "per-cluster", "total", "speedup", "U_lbus", "w_lbus", "U_gbus", "w_gbus", "iters")

	addRow := func(r snoopmva.HierarchicalResult) {
		tb.AddRow(r.Clusters, r.PerCluster, r.TotalProcessors, r.Speedup,
			r.LocalBusUtil, r.LocalBusWait, r.GlobalBusUtil, r.GlobalBusWait, r.Iterations)
	}

	switch {
	case *total > 0:
		for c := 1; c <= *total; c++ {
			if *total%c != 0 {
				continue
			}
			cfg := base
			cfg.Clusters, cfg.PerCluster = c, *total/c
			if *scaled {
				remote := float64(*total-cfg.PerCluster) / float64(*total-1)
				cfg.GlobalMissFraction = *gmiss * remote
				cfg.GlobalBcFraction = *gbc * remote
			}
			r, err := snoopmva.SolveHierarchical(proto, w, cfg)
			if err != nil {
				fatal(err)
			}
			addRow(r)
		}
	case *clusters > 0 && *perCluster > 0:
		cfg := base
		cfg.Clusters, cfg.PerCluster = *clusters, *perCluster
		r, err := snoopmva.SolveHierarchical(proto, w, cfg)
		if err != nil {
			fatal(err)
		}
		addRow(r)
	default:
		fatal(fmt.Errorf("specify -total N or both -clusters and -percluster"))
	}
	if err := tb.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hiersolve:", err)
	os.Exit(1)
}
