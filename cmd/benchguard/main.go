// Command benchguard is the performance regression gate: it runs the
// benchkit suites (quick mode by default), compares the result against
// the checked-in baseline report under configurable budgets, and fails
// with a violations table when the candidate regresses past them.
//
//	benchguard                         # quick run vs BENCH_solver.json
//	benchguard -quick=false            # full-size candidate run
//	benchguard -candidate out.json     # compare a pre-generated report
//	benchguard -update                 # regenerate the baseline instead
//	benchguard -time-budget=-1         # alloc-only gate (cross-machine)
//
// Budgets: -time-budget bounds the fractional wall-clock regression on
// the latency and throughput series (default 0.05; negative disables the
// wall-clock checks for cross-machine comparisons). -alloc-budget bounds
// the absolute allocs/op increase on the //snoop:hotpath series (default
// 0 — new hotpath allocations must be argued into the baseline via
// -update). -bytes-budget bounds the fractional bytes/op increase
// (default 0.2). Baselines generated before the allocation series
// existed skip the allocation checks.
//
// Wall-clock series are only compared between like-mode runs (both
// quick or both full): quick's smaller reps and grids amortize fixed
// overheads differently, so a quick candidate against the checked-in
// full baseline gates allocations only. The allocation series are
// mode-independent and always gated.
//
// The serving layer is gated separately: -snoopd-baseline names a
// BENCH_snoopd.json report and turns on the snoopd gate, which runs the
// snoopbench suite (or reads -snoopd-candidate) and compares throughput
// under the same budgets — plus the absolute batch-vs-JSON speedup
// floor, which is machine-independent and enforced on every candidate.
// -baseline "" skips the solver gate for a snoopd-only run; -update
// regenerates whichever baselines are named.
//
// Exit status: 0 when every series is within budget, 1 on an operational
// error, 2 when the gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"snoopmva/internal/benchkit"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_solver.json", "baseline report to gate against (empty skips the solver gate)")
	candidatePath := flag.String("candidate", "", "pre-generated candidate report; empty runs the suites")
	quick := flag.Bool("quick", true, "run the suites at CI size when generating the candidate")
	update := flag.Bool("update", false, "regenerate the named baselines from fresh runs and exit")
	timeBudget := flag.Float64("time-budget", 0.05, "allowed fractional wall-clock regression; negative disables")
	allocBudget := flag.Float64("alloc-budget", 0, "allowed absolute allocs/op increase on hotpath series")
	bytesBudget := flag.Float64("bytes-budget", 0.2, "allowed fractional bytes/op increase")
	snoopdBaselinePath := flag.String("snoopd-baseline", "", "serving-layer baseline report (BENCH_snoopd.json); empty skips the snoopd gate")
	snoopdCandidatePath := flag.String("snoopd-candidate", "", "pre-generated serving-layer candidate report; empty runs the snoopbench suite")
	flag.Parse()

	if *baselinePath == "" && *snoopdBaselinePath == "" {
		fatal(fmt.Errorf("nothing to do: -baseline and -snoopd-baseline are both empty"))
	}

	if *update {
		if *baselinePath != "" {
			rep, err := benchkit.Run(*quick)
			if err != nil {
				fatal(err)
			}
			if err := writeReport(*baselinePath, rep); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchguard: baseline %s regenerated\n", *baselinePath)
		}
		if *snoopdBaselinePath != "" {
			rep, err := benchkit.RunSnoopd(benchkit.SnoopdConfig{Quick: *quick})
			if err != nil {
				fatal(err)
			}
			if err := writeReport(*snoopdBaselinePath, rep); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchguard: baseline %s regenerated\n", *snoopdBaselinePath)
		}
		return
	}

	budgets := benchkit.Budgets{Time: *timeBudget, Allocs: *allocBudget, Bytes: *bytesBudget}
	var violations []benchkit.Violation
	var against []string

	if *baselinePath != "" {
		baseline, err := readReport(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var candidate *benchkit.Report
		if *candidatePath != "" {
			if candidate, err = readReport(*candidatePath); err != nil {
				fatal(err)
			}
		} else {
			if candidate, err = benchkit.Run(*quick); err != nil {
				fatal(err)
			}
		}
		if *timeBudget >= 0 && !benchkit.ModesMatch(baseline, candidate) {
			fmt.Fprintln(os.Stderr, "benchguard: baseline and candidate ran in different modes (quick vs full); wall-clock series skipped, allocation series still gated")
		}
		violations = append(violations, benchkit.Compare(baseline, candidate, budgets)...)
		against = append(against, fmt.Sprintf("%s (baseline %s)", *baselinePath, baseline.Generated))
	}

	if *snoopdBaselinePath != "" {
		baseline, err := readSnoopdReport(*snoopdBaselinePath)
		if err != nil {
			fatal(err)
		}
		var candidate *benchkit.SnoopdReport
		if *snoopdCandidatePath != "" {
			if candidate, err = readSnoopdReport(*snoopdCandidatePath); err != nil {
				fatal(err)
			}
		} else {
			if candidate, err = benchkit.RunSnoopd(benchkit.SnoopdConfig{Quick: *quick}); err != nil {
				fatal(err)
			}
		}
		if *timeBudget >= 0 && !benchkit.SnoopdModesMatch(baseline, candidate) {
			fmt.Fprintln(os.Stderr, "benchguard: snoopd baseline and candidate ran at different load shapes; throughput series skipped, batch-speedup floor still gated")
		}
		violations = append(violations, benchkit.CompareSnoopd(baseline, candidate, budgets)...)
		against = append(against, fmt.Sprintf("%s (baseline %s)", *snoopdBaselinePath, baseline.Generated))
	}

	if len(violations) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: ok against %s\n", strings.Join(against, ", "))
		return
	}
	fmt.Fprintf(os.Stderr, "benchguard: %d series over budget against %s:\n\n", len(violations), strings.Join(against, ", "))
	fmt.Fprint(os.Stderr, benchkit.FormatViolations(violations))
	fmt.Fprintf(os.Stderr, "\nIf the regression is intended, regenerate the baseline with benchguard -update.\n")
	os.Exit(2)
}

func readReport(path string) (*benchkit.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchkit.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

func readSnoopdReport(path string) (*benchkit.SnoopdReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchkit.SnoopdReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

func writeReport(path string, rep any) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
