// Command bench measures the solve-layer performance baseline and writes
// it as JSON (BENCH_solver.json at the repository root is the checked-in
// reference run). Four suites cover the paths the high-throughput layer
// (DESIGN.md §11) is built around:
//
//   - solve: cold MVA fixed-point latency (the unit everything multiplies)
//   - sweep: warm-started sweep versus per-size cold solves — iteration
//     and wall-clock savings
//   - cache: memoized re-solve latency versus cold, for both the plain
//     MVA path and the GTPN-backed SolveBest path (the headline ≥100×)
//   - campaign: design-space grid throughput in points/sec, with and
//     without a shared CachedSolver
//
// Examples:
//
//	bench -out BENCH_solver.json   # full run (the checked-in baseline)
//	bench -quick                   # CI-sized run, prints to stdout too
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"snoopmva"
	"snoopmva/internal/stats"
)

type report struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`

	Solve    solveReport    `json:"solve"`
	Sweep    sweepReport    `json:"sweep"`
	Cache    cacheReport    `json:"cache"`
	Campaign campaignReport `json:"campaign"`
}

type solveReport struct {
	Config       string  `json:"config"`
	Reps         int     `json:"reps"`
	MedianNs     float64 `json:"median_ns"`
	P95Ns        float64 `json:"p95_ns"`
	SolvesPerSec float64 `json:"solves_per_sec"`
}

type sweepReport struct {
	Sizes              string  `json:"sizes"`
	ColdNs             int64   `json:"cold_ns"`
	WarmNs             int64   `json:"warm_ns"`
	ColdIterations     int     `json:"cold_iterations"`
	WarmIterations     int     `json:"warm_iterations"`
	IterationsSavedPct float64 `json:"iterations_saved_pct"`
	WarmPointsPerSec   float64 `json:"warm_points_per_sec"`
}

type cacheReport struct {
	MVAColdNs   float64 `json:"mva_cold_ns"`
	MVAHitNs    float64 `json:"mva_hit_ns"`
	MVASpeedup  float64 `json:"mva_speedup"`
	BestColdNs  float64 `json:"best_cold_ns"`
	BestHitNs   float64 `json:"best_hit_ns"`
	BestSpeedup float64 `json:"best_speedup"`
}

type campaignReport struct {
	Points            int     `json:"points"`
	UncachedNs        int64   `json:"uncached_ns"`
	CachedNs          int64   `json:"cached_ns"`
	UncachedPtsPerSec float64 `json:"uncached_points_per_sec"`
	CachedPtsPerSec   float64 `json:"cached_points_per_sec"`
	CacheHitRatePct   float64 `json:"cache_hit_rate_pct"`
	CachedRunIsRepeat bool    `json:"cached_run_is_repeat"`
}

func main() {
	var (
		quick = flag.Bool("quick", false, "CI-sized run: fewer repetitions, smaller grids")
		out   = flag.String("out", "BENCH_solver.json", "output path (\"-\" for stdout)")
	)
	flag.Parse()

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	var err error
	if rep.Solve, err = benchSolve(*quick); err != nil {
		fatal(err)
	}
	if rep.Sweep, err = benchSweep(*quick); err != nil {
		fatal(err)
	}
	if rep.Cache, err = benchCache(*quick); err != nil {
		fatal(err)
	}
	if rep.Campaign, err = benchCampaign(*quick); err != nil {
		fatal(err)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(*out, buf, 0o644)
		fmt.Printf("bench: wrote %s (solve %.1fµs median, cache hit %.0f× on SolveBest, campaign %.0f pts/s cached)\n",
			*out, rep.Solve.MedianNs/1e3, rep.Cache.BestSpeedup, rep.Campaign.CachedPtsPerSec)
	}
	if err != nil {
		fatal(err)
	}
}

// benchSolve times the cold MVA fixed point — the paper's Section 3 claim
// is that this path is cheap enough to embed in design loops.
func benchSolve(quick bool) (solveReport, error) {
	reps := 2000
	if quick {
		reps = 200
	}
	p, w, n := snoopmva.WriteOnce(), snoopmva.AppendixA(snoopmva.Sharing5), 16
	samples, err := sample(reps, func() error {
		_, serr := snoopmva.Solve(p, w, n)
		return serr
	})
	if err != nil {
		return solveReport{}, err
	}
	med, err := stats.Quantile(samples, 0.5)
	if err != nil {
		return solveReport{}, err
	}
	p95, err := stats.Quantile(samples, 0.95)
	if err != nil {
		return solveReport{}, err
	}
	return solveReport{
		Config:       "WriteOnce / Sharing5 / N=16",
		Reps:         reps,
		MedianNs:     med,
		P95Ns:        p95,
		SolvesPerSec: 1e9 / med,
	}, nil
}

// benchSweep compares the warm-started sweep (each size seeded from the
// previous converged state) against independent cold solves over the same
// sizes.
func benchSweep(quick bool) (sweepReport, error) {
	hi := 64
	if quick {
		hi = 32
	}
	ns := make([]int, hi)
	for i := range ns {
		ns[i] = i + 1
	}
	p, w := snoopmva.Illinois(), snoopmva.AppendixA(snoopmva.Sharing20)

	// Best-of-3 wall times: a single pass over a millisecond-scale sweep is
	// at the mercy of the scheduler, and this file is a checked-in baseline.
	var coldNs, warmNs int64
	var coldIters, warmIters int
	for round := 0; round < 3; round++ {
		iters := 0
		start := time.Now()
		for _, n := range ns {
			r, err := snoopmva.Solve(p, w, n)
			if err != nil {
				return sweepReport{}, err
			}
			iters += r.Iterations
		}
		if el := time.Since(start).Nanoseconds(); round == 0 || el < coldNs {
			coldNs = el
		}
		coldIters = iters

		iters = 0
		start = time.Now()
		warm, err := snoopmva.Sweep(p, w, ns)
		if err != nil {
			return sweepReport{}, err
		}
		el := time.Since(start).Nanoseconds()
		for _, r := range warm {
			iters += r.Iterations
		}
		if round == 0 || el < warmNs {
			warmNs = el
		}
		warmIters = iters
	}
	return sweepReport{
		Sizes:              fmt.Sprintf("1..%d", hi),
		ColdNs:             coldNs,
		WarmNs:             warmNs,
		ColdIterations:     coldIters,
		WarmIterations:     warmIters,
		IterationsSavedPct: 100 * float64(coldIters-warmIters) / float64(coldIters),
		WarmPointsPerSec:   float64(len(ns)) * 1e9 / float64(warmNs),
	}, nil
}

// benchCache times the memoized hit path against the cold solve it
// replaces, for the µs-scale MVA path and the ms-scale GTPN-backed
// SolveBest path.
func benchCache(quick bool) (cacheReport, error) {
	hitReps := 10000
	if quick {
		hitReps = 1000
	}
	p, w := snoopmva.WriteOnce(), snoopmva.AppendixA(snoopmva.Sharing5)
	ctx := context.Background()

	// Plain MVA path.
	cs := snoopmva.NewCachedSolver(0)
	coldSamples, err := sample(200, func() error {
		cs.Purge()
		_, serr := cs.Solve(p, w, 16)
		return serr
	})
	if err != nil {
		return cacheReport{}, err
	}
	mvaCold, err := stats.Quantile(coldSamples, 0.5)
	if err != nil {
		return cacheReport{}, err
	}
	if _, err := cs.Solve(p, w, 16); err != nil {
		return cacheReport{}, err
	}
	hitStart := time.Now()
	for i := 0; i < hitReps; i++ {
		if _, err := cs.Solve(p, w, 16); err != nil {
			return cacheReport{}, err
		}
	}
	mvaHit := float64(time.Since(hitStart).Nanoseconds()) / float64(hitReps)

	// GTPN-backed SolveBest path: one cold ladder (the expensive
	// comparator), then the hit loop.
	cs.Purge()
	budget := snoopmva.Budget{SimCycles: -1}
	bestStart := time.Now()
	if _, err := cs.SolveBest(ctx, p, w, 4, budget); err != nil {
		return cacheReport{}, err
	}
	bestCold := float64(time.Since(bestStart).Nanoseconds())
	bestStart = time.Now()
	for i := 0; i < hitReps; i++ {
		if _, err := cs.SolveBest(ctx, p, w, 4, budget); err != nil {
			return cacheReport{}, err
		}
	}
	bestHit := float64(time.Since(bestStart).Nanoseconds()) / float64(hitReps)

	return cacheReport{
		MVAColdNs:   mvaCold,
		MVAHitNs:    mvaHit,
		MVASpeedup:  mvaCold / mvaHit,
		BestColdNs:  bestCold,
		BestHitNs:   bestHit,
		BestSpeedup: bestCold / bestHit,
	}, nil
}

// benchCampaign drives the full campaign runner (watchdog, retry, journal
// machinery disabled) over a protocol × size grid, then repeats the grid
// through a shared cache — the steady-state of an interactive design
// session revisiting configurations.
func benchCampaign(quick bool) (campaignReport, error) {
	hi := 32
	if quick {
		hi = 12
	}
	w := snoopmva.AppendixA(snoopmva.Sharing5)
	var points []snoopmva.CampaignPoint
	for _, p := range snoopmva.Protocols() {
		for n := 1; n <= hi; n++ {
			points = append(points, snoopmva.CampaignPoint{
				Protocol: p, Workload: w, N: n,
				Budget: snoopmva.Budget{MaxStates: -1, SimCycles: -1},
			})
		}
	}
	ctx := context.Background()

	uncachedStart := time.Now()
	res, err := snoopmva.RunCampaign(ctx, snoopmva.CampaignSpec{Points: points})
	if err != nil {
		return campaignReport{}, err
	}
	uncachedNs := time.Since(uncachedStart).Nanoseconds()
	if res.Failed > 0 {
		return campaignReport{}, fmt.Errorf("bench campaign: %d points failed", res.Failed)
	}

	cache := snoopmva.NewCachedSolver(0)
	// Warm pass populates the cache; the timed pass is the repeat.
	if _, err := snoopmva.RunCampaign(ctx, snoopmva.CampaignSpec{Points: points, Cache: cache}); err != nil {
		return campaignReport{}, err
	}
	cachedStart := time.Now()
	if _, err := snoopmva.RunCampaign(ctx, snoopmva.CampaignSpec{Points: points, Cache: cache}); err != nil {
		return campaignReport{}, err
	}
	cachedNs := time.Since(cachedStart).Nanoseconds()

	return campaignReport{
		Points:            len(points),
		UncachedNs:        uncachedNs,
		CachedNs:          cachedNs,
		UncachedPtsPerSec: float64(len(points)) * 1e9 / float64(uncachedNs),
		CachedPtsPerSec:   float64(len(points)) * 1e9 / float64(cachedNs),
		CacheHitRatePct:   100 * cache.Stats().HitRate(),
		CachedRunIsRepeat: true,
	}, nil
}

// sample runs f reps times and returns the per-call wall time in
// nanoseconds.
func sample(reps int, f func() error) ([]float64, error) {
	out := make([]float64, reps)
	for i := range out {
		start := time.Now()
		if err := f(); err != nil {
			return nil, err
		}
		out[i] = float64(time.Since(start).Nanoseconds())
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
