// Command bench runs the solver performance suites and writes the
// machine-readable report that BENCH_solver.json is generated from. The
// suites themselves live in internal/benchkit, shared with the
// benchguard regression gate; this command is the thin writer:
//
//	go run ./cmd/bench            # full run, writes BENCH_solver.json
//	go run ./cmd/bench -quick     # CI-sized run
//	go run ./cmd/bench -out -     # report to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"snoopmva/internal/benchkit"
)

func main() {
	quick := flag.Bool("quick", false, "smaller reps/grids for CI smoke runs")
	out := flag.String("out", "BENCH_solver.json", "output path, or - for stdout")
	flag.Parse()

	rep, err := benchkit.Run(*quick)
	if err != nil {
		fatal(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	fmt.Fprintf(os.Stderr, "solve   median %.1fµs  p95 %.1fµs  (%.0f solves/sec)\n",
		rep.Solve.MedianNs/1e3, rep.Solve.P95Ns/1e3, rep.Solve.SolvesPerSec)
	fmt.Fprintf(os.Stderr, "sweep   warm %.2fms vs cold %.2fms  (%.1f%% iterations saved)\n",
		float64(rep.Sweep.WarmNs)/1e6, float64(rep.Sweep.ColdNs)/1e6, rep.Sweep.IterationsSavedPct)
	fmt.Fprintf(os.Stderr, "cache   mva hit %.0fns (%.0fx)  best hit %.0fns (%.0fx)\n",
		rep.Cache.MVAHitNs, rep.Cache.MVASpeedup, rep.Cache.BestHitNs, rep.Cache.BestSpeedup)
	fmt.Fprintf(os.Stderr, "campaign %d points  %.0f pts/sec uncached, %.0f pts/sec cached\n",
		rep.Campaign.Points, rep.Campaign.UncachedPtsPerSec, rep.Campaign.CachedPtsPerSec)
	if rep.Allocs != nil {
		fmt.Fprintf(os.Stderr, "allocs  solve %.1f/op  cache hit %.1f/op  key encode %.1f/op\n",
			rep.Allocs.Solve.AllocsPerOp, rep.Allocs.CacheHit.AllocsPerOp, rep.Allocs.KeyEncode.AllocsPerOp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
