// Command gtpnsolve runs the detailed Generalized Timed Petri Net model —
// the paper's expensive comparator — for small system sizes, and reports
// the reachability-graph size alongside the performance measures.
//
// Examples:
//
//	gtpnsolve -sharing 5 -n 4
//	gtpnsolve -mods 1 -sharing 20 -sweep 1,2,4,6 -compare
//	gtpnsolve -n 3 -perproc        # show the exploded state space
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"snoopmva"
	"snoopmva/internal/gtpnmodel"
	"snoopmva/internal/petri"
	"snoopmva/internal/protocol"
	"snoopmva/internal/tables"
	"snoopmva/internal/workload"
)

func main() {
	var (
		mods      = flag.String("mods", "", "comma-separated modification numbers 1-4")
		sharing   = flag.Int("sharing", 5, "Appendix A sharing level: 1, 5 or 20")
		n         = flag.Int("n", 4, "number of processors")
		sweep     = flag.String("sweep", "", "comma-separated system sizes (overrides -n)")
		compare   = flag.Bool("compare", false, "add MVA columns for comparison")
		perProc   = flag.Bool("perproc", false, "also count the per-processor (exploded) state space")
		maxStates = flag.Int("maxstates", 500000, "state-space cap")
		memory    = flag.Bool("memory", false, "model main-memory module contention (posted writes)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (e.g. 1m; 0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	ws, err := sharingParams(*sharing)
	if err != nil {
		fatal(err)
	}
	ms, err := parseMods(*mods)
	if err != nil {
		fatal(err)
	}
	ns := []int{*n}
	if *sweep != "" {
		ns, err = parseInts(*sweep)
		if err != nil {
			fatal(err)
		}
	}

	cols := []string{"N", "states", "speedup", "R", "U_bus", "solve-time"}
	if *perProc {
		cols = append(cols, "perproc-states")
	}
	if *compare {
		cols = append(cols, "mva-speedup", "rel-diff-%")
	}
	tb := tables.New(fmt.Sprintf("GTPN results — %v, %d%% sharing", ms, *sharing), cols...)

	for _, size := range ns {
		cfg := gtpnmodel.Config{Workload: ws, Mods: ms, N: size, ModelMemory: *memory}
		t0 := time.Now()
		g, err := gtpnmodel.SolveContext(ctx, cfg, petri.Options{MaxStates: *maxStates})
		if err != nil {
			fatal(fmt.Errorf("N=%d: %w", size, err))
		}
		row := []any{size, g.States, g.Speedup, g.R, g.UBus, time.Since(t0).Round(time.Millisecond).String()}
		if *perProc {
			pp, err := gtpnmodel.StateCountContext(ctx, cfg, true, petri.Options{MaxStates: *maxStates})
			if err != nil {
				row = append(row, "> cap")
			} else {
				row = append(row, pp)
			}
		}
		if *compare {
			p := snoopmva.WithMods(modsToInts(ms)...)
			m, err := snoopmva.SolveWith(p, snoopmva.AppendixA(snoopmva.Sharing(*sharing)),
				snoopmva.Timing{}, size, snoopmva.Options{NoCacheInterference: true, NoMemoryInterference: true})
			if err != nil {
				fatal(err)
			}
			row = append(row, m.Speedup, fmt.Sprintf("%+.1f", 100*(m.Speedup-g.Speedup)/g.Speedup))
		}
		tb.AddRow(row...)
	}
	if err := tb.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func sharingParams(s int) (workload.Params, error) {
	switch s {
	case 1:
		return workload.AppendixA(workload.Sharing1), nil
	case 5:
		return workload.AppendixA(workload.Sharing5), nil
	case 20:
		return workload.AppendixA(workload.Sharing20), nil
	default:
		return workload.Params{}, fmt.Errorf("sharing must be 1, 5 or 20 (got %d)", s)
	}
}

func parseMods(s string) (protocol.ModSet, error) {
	if s == "" {
		return 0, nil
	}
	nums, err := parseInts(s)
	if err != nil {
		return 0, err
	}
	var ms protocol.ModSet
	for _, v := range nums {
		if v < 1 || v > 4 {
			return 0, fmt.Errorf("modification %d outside 1-4", v)
		}
		ms = ms.With(protocol.Mod(v))
	}
	return ms, ms.Valid()
}

func modsToInts(ms protocol.ModSet) []int {
	var out []int
	for _, m := range ms.Mods() {
		out = append(out, int(m))
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtpnsolve:", err)
	os.Exit(1)
}
