// Command snoopd serves the snoopmva solvers over HTTP: JSON solve
// endpoints (POST /v1/solve, /v1/solvebest, /v1/sweep, /v1/compare),
// Prometheus metrics at /metrics, liveness at /healthz, expvar at
// /debug/vars, and pprof at /debug/pprof. Shutdown is graceful:
// SIGINT/SIGTERM first flips /healthz to 503 (so health-checked routing —
// e.g. the campaignd coordinator — stops sending new work), then stops
// accepting requests and drains in-flight solves before exiting.
//
// Examples:
//
//	snoopd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/solve -d '{
//	    "protocol": {"name": "Illinois"},
//	    "workload": {"appendix_a": 5},
//	    "n": 10
//	}'
//	curl -s localhost:8080/metrics | grep snoopmva_mva_solves_total
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snoopmva"
	"snoopmva/internal/admission"
	"snoopmva/internal/snoopd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wireAddr := flag.String("wire-addr", "", "binary wire-protocol listen address (empty disables the wire listener)")
	cacheCap := flag.Int("cache", 16384, "shared solve-cache capacity (0 disables caching)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "deadline applied to requests without timeout_ms (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper bound on per-request timeout_ms (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves")
	drainGrace := flag.Duration("drain-grace", 0, "after SIGTERM, keep serving for this long with /healthz at 503 so health-checked routing drains away first")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrent /v1/* requests (0 disables overload protection)")
	admTargetMS := flag.Int64("admission-target-ms", 50, "admission control: per-solve latency target in ms the adaptive limit steers to")
	admQueue := flag.Int("admission-queue", 0, "admission control: queued-request bound (0 = 2×max-inflight, negative = no queue)")
	ratePerClient := flag.Float64("rate-per-client", 0, "admission control: per-client token-bucket rate in req/s, keyed by the "+snoopd.ClientIDHeader+" header (0 disables)")
	brownoutPct := flag.Float64("brownout-shed-pct", 0, "admission control: shed-rate fraction in [0,1) above which /v1/solvebest browns out to cache-hit-or-MVA-only (0 disables)")
	flag.Parse()

	cfg := snoopd.Config{
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
	}
	if *cacheCap != 0 {
		cfg.Cache = snoopmva.NewCachedSolver(*cacheCap)
	}
	if *maxInflight < 0 {
		fmt.Fprintf(os.Stderr, "snoopd: -max-inflight must be >= 0, got %d\n", *maxInflight)
		os.Exit(2)
	}
	if *maxInflight == 0 && (*ratePerClient != 0 || *brownoutPct != 0) {
		fmt.Fprintln(os.Stderr, "snoopd: -rate-per-client and -brownout-shed-pct require -max-inflight > 0")
		os.Exit(2)
	}
	if *maxInflight > 0 {
		if *admTargetMS <= 0 {
			fmt.Fprintf(os.Stderr, "snoopd: -admission-target-ms must be > 0, got %d\n", *admTargetMS)
			os.Exit(2)
		}
		adm, err := admission.New(admission.Config{
			MaxInflight:     *maxInflight,
			Target:          time.Duration(*admTargetMS) * time.Millisecond,
			QueueLimit:      *admQueue,
			RatePerClient:   *ratePerClient,
			BrownoutShedPct: *brownoutPct,
			Name:            "snoopd",
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "snoopd: %v\n", err)
			os.Exit(2)
		}
		cfg.Admission = adm
	}
	handler := snoopd.New(cfg)

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The binary wire listener shares the handler's cores, cache and
	// admission gate; its lifetime is the wireCtx canceled at shutdown.
	// Bind it before the HTTP listener so a bad -wire-addr is a clean
	// flag-validation exit, not a half-started server.
	wireCtx, wireCancel := context.WithCancel(context.Background())
	defer wireCancel()
	var wireDone chan error // nil when the wire listener is disabled
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snoopd: -wire-addr: %v\n", err)
			os.Exit(2)
		}
		wireDone = make(chan error, 1)
		go func() { wireDone <- handler.ServeWire(wireCtx, ln) }()
		fmt.Fprintf(os.Stderr, "snoopd: wire listening on %s\n", ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "snoopd: listening on %s\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// A receive on wireDone here means the wire listener died while the
	// process was supposed to be serving — surface it immediately instead
	// of silently serving HTTP-only until shutdown. (A nil wireDone
	// channel — wire disabled — never fires.)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "snoopd: serve: %v\n", err)
		os.Exit(1)
	case err := <-wireDone:
		fmt.Fprintf(os.Stderr, "snoopd: wire serve: %v\n", err)
		os.Exit(1)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "snoopd: %v, draining in-flight solves\n", sig)
	}

	// Flip /healthz to 503 before closing the listener: a coordinator or
	// load balancer probing health stops routing new work here while the
	// grace window (and then Shutdown) drains what is already in flight.
	handler.BeginDrain()
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	wireCancel() // close the wire listener and its established connections
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "snoopd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if wireDone != nil {
		// ServeWire closes its connections on cancel, so this resolves
		// promptly; the drain-timeout bound is a backstop so a wedged wire
		// drain can never hang SIGTERM shutdown past -drain-timeout.
		select {
		case err := <-wireDone:
			if err != nil {
				fmt.Fprintf(os.Stderr, "snoopd: wire serve: %v\n", err)
				os.Exit(1)
			}
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "snoopd: wire drain timed out")
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "snoopd: serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "snoopd: drained, bye")
}
