// Command paperrepro regenerates every table and figure from the paper's
// evaluation section and prints paper-vs-measured comparisons
// (DESIGN.md §5 is the experiment index; EXPERIMENTS.md captures a run).
//
// Examples:
//
//	paperrepro                    # run everything
//	paperrepro -exp tab4.1a       # one experiment
//	paperrepro -list              # list experiment IDs
//	paperrepro -gtpn 8 -simcycles 1000000 -markdown > EXPERIMENTS.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"snoopmva/internal/exp"
)

func main() {
	var (
		id        = flag.String("exp", "", "run only this experiment ID")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		gtpnMaxN  = flag.Int("gtpn", 6, "run the detailed GTPN comparator up to this N (0 disables)")
		simCycles = flag.Int64("simcycles", 200000, "simulator measurement cycles (0 disables)")
		seed      = flag.Uint64("seed", 1988, "simulator seed")
		markdown  = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (paper-vs-measured cells) instead of text")
		csvDir    = flag.String("csvdir", "", "also write each experiment's tables/series as CSV files into this directory")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 10m; 0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := exp.RunConfig{Ctx: ctx, GTPNMaxN: *gtpnMaxN, SimCycles: *simCycles, Seed: *seed}
	if cfg.GTPNMaxN == 0 {
		cfg.GTPNMaxN = -1
	}
	if cfg.SimCycles == 0 {
		cfg.SimCycles = -1
	}

	var todo []exp.Experiment
	if *id != "" {
		e, ok := exp.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q; try -list\n", *id)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	} else {
		todo = exp.All()
	}

	failures := 0
	for _, e := range todo {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %s: %v\n", e.ID, err)
			failures++
			continue
		}
		var werr error
		switch {
		case *jsonOut:
			werr = rep.WriteJSON(os.Stdout)
		case *markdown:
			werr = rep.WriteMarkdown(os.Stdout)
		default:
			werr = rep.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %s: %v\n", e.ID, werr)
			failures++
		}
		if *csvDir != "" {
			paths, err := rep.WriteCSVDir(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: %s: csv export: %v\n", e.ID, err)
				failures++
			} else {
				fmt.Fprintf(os.Stderr, "wrote %d CSV files for %s\n", len(paths), e.ID)
			}
		}
		fmt.Println()
	}
	if failures > 0 {
		os.Exit(1)
	}
}
