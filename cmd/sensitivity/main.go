// Command sensitivity ranks the workload parameters by their influence on
// the MVA model's predictions: local elasticities and tornado ranges. It
// answers the question behind the paper's closing call for "workload
// measurement studies": which parameters must be measured carefully?
//
// Examples:
//
//	sensitivity -sharing 5 -n 20
//	sensitivity -protocol Dragon -metric bus -tornado 0.25
//	sensitivity -sweep h_sw -values 0.1,0.3,0.5,0.7,0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snoopmva/internal/mva"
	"snoopmva/internal/protocol"
	"snoopmva/internal/sensitivity"
	"snoopmva/internal/tables"
	"snoopmva/internal/workload"
)

func main() {
	var (
		protoName = flag.String("protocol", "Write-Once", "named protocol")
		sharing   = flag.Int("sharing", 5, "Appendix A sharing level: 1, 5 or 20")
		n         = flag.Int("n", 20, "number of processors")
		metric    = flag.String("metric", "speedup", "speedup, bus or response")
		tornado   = flag.Float64("tornado", 0.25, "tornado range as a fraction of each base value")
		sweep     = flag.String("sweep", "", "sweep a single parameter instead (e.g. h_sw)")
		values    = flag.String("values", "", "comma-separated values for -sweep")
	)
	flag.Parse()

	if *sharing != 1 && *sharing != 5 && *sharing != 20 {
		fatal(fmt.Errorf("sharing must be 1, 5 or 20"))
	}
	p, ok := protocol.ByName(*protoName)
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	var m sensitivity.Metric
	switch *metric {
	case "speedup":
		m = sensitivity.Speedup
	case "bus":
		m = sensitivity.BusUtilization
	case "response":
		m = sensitivity.ResponseTime
	default:
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}
	var ws workload.Params
	switch *sharing {
	case 1:
		ws = workload.AppendixA(workload.Sharing1)
	case 5:
		ws = workload.AppendixA(workload.Sharing5)
	default:
		ws = workload.AppendixA(workload.Sharing20)
	}
	study := sensitivity.Study{
		Model:  mva.Model{Workload: ws, Mods: p.Mods, WriteThroughBase: p.WriteThroughBase},
		N:      *n,
		Metric: m,
	}

	if *sweep != "" {
		if *values == "" {
			fatal(fmt.Errorf("-sweep requires -values"))
		}
		var vals []float64
		for _, part := range strings.Split(*values, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(err)
			}
			vals = append(vals, v)
		}
		pts, skipped, err := study.SweepParam(sensitivity.Param(*sweep), vals)
		if err != nil {
			fatal(err)
		}
		tb := tables.New(fmt.Sprintf("Sweep of %s (%s, N=%d, metric %s)", *sweep, p.Name, *n, m),
			*sweep, m.String())
		for _, pt := range pts {
			tb.AddRow(pt.Value, pt.Metric)
		}
		if err := tb.WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Printf("(%d values skipped as invalid)\n", skipped)
		}
		return
	}

	es, err := study.Elasticities(0.02)
	if err != nil {
		fatal(err)
	}
	et := tables.New(fmt.Sprintf("Elasticities of %s (%s, %d%% sharing, N=%d)", m, p.Name, *sharing, *n),
		"parameter", "base", "elasticity d ln M / d ln p")
	for _, e := range es {
		v := "n/a"
		if e.OK {
			v = fmt.Sprintf("%+.4f", e.Value)
		}
		et.AddRow(string(e.Param), e.Base, v)
	}
	if err := et.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}

	bars, err := study.Tornado(*tornado)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	tt := tables.New(fmt.Sprintf("Tornado (±%.0f%% of base)", *tornado*100),
		"parameter", "range", "metric span", "low", "high")
	for _, b := range bars {
		tt.AddRow(string(b.Param),
			fmt.Sprintf("[%.3g, %.3g]", b.Lo, b.Hi),
			b.AbsoluteSpan, b.MetricAtLo, b.MetricAtHi)
	}
	if err := tt.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sensitivity:", err)
	os.Exit(1)
}
