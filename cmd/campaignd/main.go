// Command campaignd runs a design-space campaign distributed across a
// pool of snoopd workers: the coordinator of DESIGN.md §13. It shards
// the same grids cmd/campaign runs locally, journals results in the same
// format (the two commands can resume each other's journals), and
// survives worker crashes, partitions, stragglers, and its own death:
// kill it mid-grid and re-run with -resume, and the final result set is
// identical to an uninterrupted run's.
//
// Examples:
//
//	snoopd -addr :8081 & snoopd -addr :8082 &
//	campaignd -workers http://localhost:8081,http://localhost:8082 \
//	    -protocols all -sharing 1,5,20 -ns 1..16 -journal dist.jsonl
//	campaignd -workers http://localhost:8082 -journal dist.jsonl -resume \
//	    -protocols all -sharing 1,5,20 -ns 1..16   # after a crash, same grid
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"snoopmva"
	"snoopmva/internal/dispatch"
	"snoopmva/internal/gridspec"
	"snoopmva/internal/tables"
)

func main() {
	var (
		workers    = flag.String("workers", "", "comma-separated snoopd worker URLs (required): http(s) base URLs, or wire://host:port[?http=base] for the binary protocol with optional JSON fallback")
		protoNames = flag.String("protocols", "all", "comma-separated protocol names, or \"all\" for every named preset")
		sharings   = flag.String("sharing", "5", "comma-separated Appendix A sharing levels (1, 5, 20)")
		ns         = flag.String("ns", "1..16", "system sizes: comma-separated values and lo..hi ranges")
		maxStates  = flag.Int("max-states", -1, "GTPN state budget per point (0 = engine default, negative = skip the GTPN stage)")
		simCycles  = flag.Int64("sim-cycles", -1, "simulator measurement cycles per point (0 = default, negative = skip the simulator stage)")
		seed       = flag.Uint64("seed", 1, "simulator seed (per point)")
		journal    = flag.String("journal", "", "journal path for checkpoint/resume (empty = no durability)")
		resume     = flag.Bool("resume", false, "continue a previous run from -journal, skipping completed points")
		pointTO    = flag.Duration("point-timeout", 2*time.Minute, "deadline per dispatch of one point (0 = none)")
		requeues   = flag.Int("requeue-limit", 0, "transport-failure re-dispatches per point before it is recorded failed (0 = default 8)")
		breaker    = flag.Int("breaker", 0, "per-worker circuit threshold: consecutive transport failures before the worker is skipped (0 = default 5, negative disables)")
		probe      = flag.Int("breaker-probe", 0, "let one dispatch through per this many skipped at an open worker circuit (0 = default 4)")
		healthIvl  = flag.Duration("health-interval", 0, "/healthz probe period (0 = default 2s, negative disables probing)")
		healthTO   = flag.Duration("health-timeout", 0, "per-probe deadline (0 = default 1s)")
		quarantine = flag.Int("quarantine-after", 0, "consecutive failed probes before a worker is quarantined (0 = default 3)")
		readmit    = flag.Int("readmit-after", 0, "consecutive successful probes before a quarantined worker is readmitted (0 = default 2)")
		strFactor  = flag.Float64("straggler-factor", 0, "straggler threshold as a multiple of the p95 solve time (0 = default 4)")
		strFloor   = flag.Duration("straggler-floor", 0, "minimum straggler threshold (0 = default 100ms)")
		strMin     = flag.Int("straggler-min-samples", 0, "completed solves required before speculation starts (0 = default 5)")
		replicas   = flag.Int("max-replicas", 0, "max concurrent replicas of one point (0 = default 2)")
		inflight   = flag.Int("max-inflight", 0, "concurrent points per worker (0 = default 1)")
		bpLimit    = flag.Int("backpressure-limit", 0, "429/503 backpressure requeues per point before it is recorded failed (0 = default 32)")
		bpCap      = flag.Duration("backpressure-delay-cap", 0, "upper bound on a worker's Retry-After park (0 = default 2s)")
		stallTO    = flag.Duration("stall-timeout", 0, "abort when no progress for this long (0 = default 2m, negative disables)")
		timeout    = flag.Duration("timeout", 0, "abort the whole campaign after this long (0 = no limit)")
		format     = flag.String("format", "text", "output format: text, csv, markdown")
		quiet      = flag.Bool("quiet", false, "print only the summary lines, not the per-point table")
		verbose    = flag.Bool("v", false, "log coordinator events (quarantines, requeues, speculation) to stderr")
	)
	flag.Parse()

	if *workers == "" {
		fatal(fmt.Errorf("-workers is required (comma-separated snoopd base URLs)"))
	}
	var transports []dispatch.Transport
	for _, u := range strings.Split(*workers, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		// wire://host:port selects the binary protocol; an optional
		// ?http=base names the worker's JSON API as the version-mismatch
		// fallback. Plain http(s) URLs use the JSON transport.
		if hostport, ok := strings.CutPrefix(u, "wire://"); ok {
			httpBase := ""
			if hp, q, found := strings.Cut(hostport, "?"); found {
				hostport = hp
				v, perr := url.ParseQuery(q)
				if perr != nil {
					fatal(fmt.Errorf("-workers: %s: %v", u, perr))
				}
				httpBase = v.Get("http")
			}
			if hostport == "" {
				fatal(fmt.Errorf("-workers: %s: wire:// needs host:port", u))
			}
			transports = append(transports, dispatch.NewWireTransport(hostport, httpBase))
			continue
		}
		transports = append(transports, dispatch.NewHTTPTransport(u, nil))
	}

	points, err := gridspec.BuildGrid(*protoNames, *sharings, *ns, snoopmva.Budget{
		MaxStates: *maxStates,
		SimCycles: *simCycles,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}

	cfg := dispatch.Config{
		Transports:           transports,
		Journal:              *journal,
		Resume:               *resume,
		PointTimeout:         *pointTO,
		HealthInterval:       *healthIvl,
		HealthTimeout:        *healthTO,
		QuarantineAfter:      *quarantine,
		ReadmitAfter:         *readmit,
		BreakerThreshold:     *breaker,
		BreakerProbe:         *probe,
		StragglerFactor:      *strFactor,
		StragglerFloor:       *strFloor,
		StragglerMinSamples:  *strMin,
		MaxReplicas:          *replicas,
		MaxInflight:          *inflight,
		RequeueLimit:         *requeues,
		BackpressureLimit:    *bpLimit,
		BackpressureDelayCap: *bpCap,
		StallTimeout:         *stallTO,
	}
	if *verbose {
		cfg.Logf = func(f string, args ...any) { fmt.Fprintf(os.Stderr, f+"\n", args...) }
	}
	coord, err := dispatch.New(cfg)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, stats, err := coord.Run(ctx, points)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		tb := tables.New(fmt.Sprintf("campaignd — %d points across %d workers", len(res.Results), len(transports)),
			"idx", "protocol", "N", "method", "speedup", "U_bus", "status")
		for i, pr := range res.Results {
			status := "ok"
			switch {
			case pr.Err != "":
				status = "FAILED"
			case pr.Resumed:
				status = "resumed"
			case pr.Degraded:
				status = "degraded"
			}
			tb.AddRow(i, points[i].Protocol.String(), points[i].N,
				string(pr.Method), pr.Speedup, pr.BusUtilization, status)
		}
		var werr error
		switch *format {
		case "text":
			werr = tb.WriteASCII(os.Stdout)
		case "csv":
			werr = tb.WriteCSV(os.Stdout)
		case "markdown":
			werr = tb.WriteMarkdown(os.Stdout)
		default:
			werr = fmt.Errorf("unknown format %q", *format)
		}
		if werr != nil {
			fatal(werr)
		}
	}

	elapsed := time.Since(start)
	rate := float64(res.Computed) / elapsed.Seconds()
	fmt.Printf("campaignd: %d points (%d computed, %d resumed, %d failed) in %v — %.1f points/sec\n",
		len(res.Results), res.Computed, res.Resumed, res.Failed, elapsed.Round(time.Millisecond), rate)
	fmt.Printf("campaignd: %d dispatches (%d redispatched, %d speculative, %d duplicates discarded); %d quarantined, %d readmitted, %d backpressured\n",
		stats.Dispatches, stats.Redispatches, stats.Speculative, stats.Duplicates, stats.Quarantined, stats.Readmitted, stats.Backpressure)
	if len(stats.WorkerCommits) > 0 {
		addrs := make([]string, 0, len(stats.WorkerCommits))
		for a := range stats.WorkerCommits {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		parts := make([]string, len(addrs))
		for i, a := range addrs {
			parts[i] = fmt.Sprintf("%s=%d", a, stats.WorkerCommits[a])
		}
		fmt.Printf("campaignd: commits by worker: %s\n", strings.Join(parts, " "))
	}
	if len(stats.OpenWorkers) > 0 {
		fmt.Printf("campaignd: workers quarantined or circuit-open at exit: %s\n", strings.Join(stats.OpenWorkers, ", "))
	}
	if res.Failed > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaignd:", err)
	os.Exit(1)
}
