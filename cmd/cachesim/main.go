// Command cachesim runs the detailed cycle-level multiprocessor simulator:
// real per-block protocol state machines, FCFS bus, interleaved memory —
// the repository's stand-in for the independent simulation studies the
// paper compares against.
//
// Examples:
//
//	cachesim -protocol Illinois -sharing 5 -n 10
//	cachesim -all -sharing 20 -n 10            # rank all named protocols
//	cachesim -protocol Dragon -n 8 -cycles 1000000 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"snoopmva"
	"snoopmva/internal/tables"
)

func main() {
	var (
		protoName = flag.String("protocol", "Write-Once", "named protocol")
		sharing   = flag.Int("sharing", 5, "Appendix A sharing level: 1, 5 or 20")
		n         = flag.Int("n", 10, "number of processors")
		cycles    = flag.Int64("cycles", 300000, "measurement cycles")
		warmup    = flag.Int64("warmup", 30000, "warmup cycles")
		seed      = flag.Uint64("seed", 1, "random seed")
		all       = flag.Bool("all", false, "simulate every named protocol and rank them")
		compare   = flag.Bool("compare", false, "add an MVA column")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (e.g. 1m; 0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sharing != 1 && *sharing != 5 && *sharing != 20 {
		fatal(fmt.Errorf("sharing must be 1, 5 or 20 (got %d)", *sharing))
	}
	w := snoopmva.AppendixA(snoopmva.Sharing(*sharing))
	opts := snoopmva.SimOptions{Seed: *seed, WarmupCycles: *warmup, MeasureCycles: *cycles}

	var protos []snoopmva.Protocol
	if *all {
		protos = snoopmva.Protocols()
	} else {
		p, ok := snoopmva.ProtocolByName(*protoName)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", *protoName))
		}
		protos = []snoopmva.Protocol{p}
	}

	cols := []string{"protocol", "speedup", "95% CI", "R", "U_bus", "U_mem", "amod*", "csupply*", "resp p/sro/sw", "p95 p/sro/sw"}
	if *compare {
		cols = append(cols, "mva-speedup")
	}
	tb := tables.New(fmt.Sprintf("Simulation — N=%d, %d%% sharing, %d cycles, seed %d",
		*n, *sharing, *cycles, *seed), cols...)
	for _, p := range protos {
		r, err := snoopmva.SimulateContext(ctx, p, w, *n, opts)
		if err != nil {
			fatal(fmt.Errorf("%v: %w", p, err))
		}
		row := []any{p.Name(), r.Speedup,
			fmt.Sprintf("[%.3f, %.3f]", r.SpeedupLow, r.SpeedupHigh),
			r.R, r.BusUtilization, r.MemUtilization, r.ObservedAmod, r.ObservedCsupply,
			fmt.Sprintf("%.1f/%.1f/%.1f", r.MeanResponse[0], r.MeanResponse[1], r.MeanResponse[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", r.P95Response[0], r.P95Response[1], r.P95Response[2])}
		if *compare {
			m, err := snoopmva.Solve(p, w, *n)
			if err != nil {
				fatal(err)
			}
			row = append(row, m.Speedup)
		}
		tb.AddRow(row...)
	}
	if err := tb.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println("\n(*) emergent quantities: parameters to the analytical models, measured outcomes here")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}
