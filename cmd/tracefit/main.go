// Command tracefit implements the measurement loop the paper's conclusion
// asks for: generate (or read) a memory-reference trace, estimate the
// basic workload parameters from it, and feed them to the MVA model.
//
// Examples:
//
//	tracefit -generate -refs 500000 -n 8 -out trace.bin
//	tracefit -in trace.bin -n 8                   # fit + solve
//	tracefit -generate -refs 300000 -n 4 -solve 16
package main

import (
	"flag"
	"fmt"
	"os"

	"snoopmva/internal/fit"
	"snoopmva/internal/mva"
	"snoopmva/internal/tables"
	"snoopmva/internal/trace"
	"snoopmva/internal/workload"
)

func main() {
	var (
		generate = flag.Bool("generate", false, "generate a synthetic trace instead of reading one")
		inPath   = flag.String("in", "", "trace file to read (binary format)")
		outPath  = flag.String("out", "", "write the generated trace here (with -generate)")
		n        = flag.Int("n", 4, "number of processors")
		refs     = flag.Int("refs", 300000, "references to generate")
		sharing  = flag.Int("sharing", 5, "Appendix A sharing level driving generation")
		seed     = flag.Uint64("seed", 1, "generator seed")
		solveN   = flag.Int("solve", 10, "solve the MVA with fitted parameters for this system size")
	)
	flag.Parse()

	var refsList []trace.Ref
	switch {
	case *generate:
		w, err := sharingParams(*sharing)
		if err != nil {
			fatal(err)
		}
		g, err := trace.NewGenerator(trace.GeneratorConfig{N: *n, Workload: w, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for i := 0; i < *refs; i++ {
			r, ok := g.Next(i % *n)
			if !ok {
				break
			}
			refsList = append(refsList, r)
		}
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fatal(err)
			}
			tw := trace.NewWriter(f)
			for _, r := range refsList {
				if err := tw.Write(r); err != nil {
					fatal(err)
				}
			}
			if err := tw.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d references to %s\n", len(refsList), *outPath)
		}
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		refsList, err = trace.ReadAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("read %d references from %s\n", len(refsList), *inPath)
	default:
		fatal(fmt.Errorf("specify -generate or -in <file>"))
	}

	est, err := fit.Fit(refsList, fit.Config{N: *n})
	if err != nil {
		fatal(err)
	}
	p := est.Params
	tb := tables.New(fmt.Sprintf("Fitted workload parameters (%d refs, %d processors)", est.Refs, *n),
		"parameter", "value")
	rows := []struct {
		name string
		v    float64
	}{
		{"p_private", p.PPrivate}, {"p_sro", p.PSro}, {"p_sw", p.PSw},
		{"h_private", p.HPrivate}, {"h_sro", p.HSro}, {"h_sw", p.HSw},
		{"r_private", p.RPrivate}, {"r_sw", p.RSw},
		{"amod_private", p.AmodPrivate}, {"amod_sw", p.AmodSw},
		{"csupply_sro", p.CsupplySro}, {"csupply_sw", p.CsupplySw},
		{"wb_csupply", p.WbCsupply},
		{"rep_p", p.RepP}, {"rep_sw", p.RepSw},
	}
	for _, r := range rows {
		tb.AddRow(r.name, r.v)
	}
	if err := tb.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}

	if *solveN > 0 {
		res, err := (mva.Model{Workload: p, RawParams: true}).Solve(*solveN, mva.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nMVA with fitted parameters, N=%d: speedup %.3f, U_bus %.3f\n",
			*solveN, res.Speedup, res.UBus)
	}
}

func sharingParams(s int) (workload.Params, error) {
	switch s {
	case 1:
		return workload.AppendixA(workload.Sharing1), nil
	case 5:
		return workload.AppendixA(workload.Sharing5), nil
	case 20:
		return workload.AppendixA(workload.Sharing20), nil
	default:
		return workload.Params{}, fmt.Errorf("sharing must be 1, 5 or 20 (got %d)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracefit:", err)
	os.Exit(1)
}
