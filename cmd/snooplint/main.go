// Command snooplint runs the repo's custom analyzer suite (ctxloop,
// floateq, senterr, naninf, panicmsg) over Go packages.
//
// Two modes:
//
//	snooplint [packages...]            standalone multichecker (default ./...)
//	go vet -vettool=$(which snooplint) ./...
//
// In the second form the go command drives snooplint through the vet tool
// protocol: it invokes the binary with -V=full for a tool fingerprint and
// then once per package with a JSON vet.cfg file argument describing the
// package's files and the export data of its dependencies.
//
// Exit status: 0 clean, 1 usage/operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"snoopmva/internal/lint"
	"snoopmva/internal/lint/analysis"
	"snoopmva/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]") // no tool flags: the suite always runs whole
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnitchecker(args[0]))
	case len(args) > 0 && strings.HasPrefix(args[0], "-"):
		switch args[0] {
		case "-h", "-help", "--help":
			usage(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "snooplint: unknown flag %s\n", args[0])
			usage(os.Stderr)
			os.Exit(1)
		}
	default:
		if len(args) == 0 {
			args = []string{"./..."}
		}
		os.Exit(runStandalone(args))
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: snooplint [packages]   (default ./...)\n")
	fmt.Fprintf(w, "   or: go vet -vettool=$(which snooplint) [packages]\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, doc)
	}
}

// printVersion answers the go command's -V=full fingerprint query. The
// content hash of the binary keys go vet's action cache, so rebuilding
// snooplint invalidates cached vet results.
func printVersion() {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			h = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Printf("snooplint version devel buildID=%s\n", h)
}

func runStandalone(patterns []string) int {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	total := 0
	for _, p := range pkgs {
		findings, err := analysis.Run(lint.Analyzers(), p.Fset, p.Files, p.Pkg, p.TypesInfo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(relativize(f))
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "snooplint: %d diagnostic(s)\n", total)
		return 2
	}
	return 0
}

// relativize shortens absolute file paths to the current directory for
// readable, clickable output.
func relativize(f analysis.Finding) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
	}
	return f.String()
}

// vetConfig is the subset of the go command's vet.cfg the checker needs
// (the schema cmd/go writes for x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command expects a facts file for every package, including
	// VetxOnly dependency passes. The suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := load.TypeCheck(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "snooplint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	findings, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
