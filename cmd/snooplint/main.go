// Command snooplint runs the repo's custom analyzer suite (atomicalign,
// ctxloop, floateq, hotalloc, metricreg, naninf, panicmsg, senterr,
// spawnbound) over Go packages.
//
// Modes:
//
//	snooplint [-only a,b] [packages...]   standalone multichecker (default ./...)
//	snooplint [-only a,b] -stale [pkgs]   report //lint:allow comments that
//	                                      suppress nothing (-only scopes the
//	                                      sweep to those analyzers' directives)
//	go vet -vettool=$(which snooplint) ./...
//
// In the vettool form the go command drives snooplint through the vet tool
// protocol: it invokes the binary with -V=full for a tool fingerprint and
// then once per package with a JSON vet.cfg file argument describing the
// package's files and the export data of its dependencies. The protocol
// has no channel for compiler escape diagnostics, so hotalloc's
// allocation check runs only in standalone mode; vettool runs still
// validate //snoop:hotpath directive placement.
//
// Exit status: 0 clean, 1 usage/operational error, 2 diagnostics (or, with
// -stale, stale suppressions) reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"snoopmva/internal/lint"
	"snoopmva/internal/lint/analysis"
	"snoopmva/internal/lint/hotalloc"
	"snoopmva/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]") // no tool flags: the suite always runs whole
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnitchecker(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: snooplint [-only analyzers] [-stale] [packages]   (default ./...)\n")
	fmt.Fprintf(w, "   or: go vet -vettool=$(which snooplint) [packages]\n\nflags:\n")
	fmt.Fprintf(w, "  -only a,b   run only the named analyzers\n")
	fmt.Fprintf(w, "  -stale      report //lint:allow comments that suppress nothing\n")
	fmt.Fprintf(w, "              (with -only, scoped to the selected analyzers' directives)\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, doc)
	}
}

// printVersion answers the go command's -V=full fingerprint query. The
// content hash of the binary keys go vet's action cache, so rebuilding
// snooplint invalidates cached vet results.
func printVersion() {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			h = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Printf("snooplint version devel buildID=%s\n", h)
}

// selectAnalyzers resolves a comma-separated -only list against the
// suite, preserving suite order.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown analyzer %q", name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("snooplint", flag.ContinueOnError)
	fs.Usage = func() { usage(os.Stderr) }
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	stale := fs.Bool("stale", false, "report //lint:allow comments that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	// Under -only, the stale sweep is scoped to the analyzers that ran: a
	// directive for an unselected analyzer looks unused only because its
	// analyzer did not run, so it is skipped rather than reported. The
	// full suite (no -only) additionally catches directives naming
	// analyzers that do not exist at all.
	staleScope := make(map[string]bool)
	if *stale && *only != "" {
		for _, a := range analyzers {
			staleScope[a.Name] = true
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	// hotalloc consumes compiler escape diagnostics; one -gcflags=-m build
	// over the same patterns covers every loaded package. Skip the build
	// when the selection leaves hotalloc out.
	var escapes *analysis.EscapeSet
	for _, a := range analyzers {
		if a == hotalloc.Analyzer {
			escapes, err = load.Escapes(".", patterns...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
				return 1
			}
			break
		}
	}

	total, staleTotal := 0, 0
	for _, p := range pkgs {
		out, err := analysis.RunTarget(analyzers, analysis.Target{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.TypesInfo,
			Escapes:   escapes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
		if *stale {
			for _, d := range out.Unused {
				if len(staleScope) > 0 && !staleScope[d.Analyzer] {
					continue
				}
				why := "finding no longer reported"
				if d.Reason == "" {
					why = "missing reason, suppresses nothing"
				}
				fmt.Printf("%s: stale //lint:allow %s (%s)\n", relativePos(d.Pos), d.Analyzer, why)
				staleTotal++
			}
			continue
		}
		for _, f := range out.Findings {
			fmt.Println(relativize(f))
		}
		total += len(out.Findings)
	}
	if *stale {
		if staleTotal > 0 {
			fmt.Fprintf(os.Stderr, "snooplint: %d stale suppression(s)\n", staleTotal)
			return 2
		}
		return 0
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "snooplint: %d diagnostic(s)\n", total)
		return 2
	}
	return 0
}

// relativize shortens absolute file paths to the current directory for
// readable, clickable output.
func relativize(f analysis.Finding) string {
	f.Pos = relativePos(f.Pos)
	return f.String()
}

func relativePos(p token.Position) token.Position {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p
}

// vetConfig is the subset of the go command's vet.cfg the checker needs
// (the schema cmd/go writes for x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command expects a facts file for every package, including
	// VetxOnly dependency passes. The suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := load.TypeCheck(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "snooplint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	// Escapes stays nil here: the vet protocol cannot carry compiler
	// escape output, so hotalloc only validates directive placement.
	findings, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snooplint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
