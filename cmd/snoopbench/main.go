// Command snoopbench is the serving-layer load client: it drives a
// snoopd through three phases — single-request JSON, single-request
// binary, and batched binary — at high connection counts and writes the
// machine-readable report BENCH_snoopd.json is generated from. The
// suite itself lives in internal/benchkit, shared with the benchguard
// regression gate; this command is the thin writer:
//
//	go run ./cmd/snoopbench                # self-hosted snoopd, 1000 conns
//	go run ./cmd/snoopbench -quick         # CI-sized run (64 conns)
//	go run ./cmd/snoopbench -out -         # report to stdout
//	go run ./cmd/snoopbench \
//	    -addr localhost:9090 -http http://localhost:8080   # external snoopd
//
// With no -addr, snoopbench hosts a snoopd in-process on loopback (a
// shared solve cache, no admission control) so the phases measure
// serving overhead, not solver arithmetic. -addr/-http point it at an
// already-running server instead — its binary listener and JSON base
// URL, which must name the same process for the ratio to mean anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime/pprof"

	"snoopmva/internal/benchkit"
	"snoopmva/internal/wire"
)

func main() {
	conns := flag.Int("conns", 0, "concurrent connections per phase (0 = 1000, or 64 with -quick)")
	rate := flag.Int("rate", 50, "requests per connection per phase")
	batch := flag.Int("batch", 16, "in-flight window of the batch-binary phase (1.."+fmt.Sprint(wire.MaxBatchPoints)+")")
	addr := flag.String("addr", "", "wire host:port of an already-running snoopd (empty self-hosts one)")
	httpBase := flag.String("http", "", "JSON base URL of the same snoopd (required with -addr)")
	quick := flag.Bool("quick", false, "smaller connection count and rate for CI smoke runs")
	out := flag.String("out", "BENCH_snoopd.json", "output path, or - for stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *conns < 0 {
		fatalUsage(fmt.Errorf("-conns must be >= 0, got %d", *conns))
	}
	if *rate < 1 {
		fatalUsage(fmt.Errorf("-rate must be >= 1, got %d", *rate))
	}
	if *batch < 1 || *batch > wire.MaxBatchPoints {
		fatalUsage(fmt.Errorf("-batch must be in 1..%d, got %d", wire.MaxBatchPoints, *batch))
	}
	if *addr != "" {
		if _, _, err := net.SplitHostPort(*addr); err != nil {
			fatalUsage(fmt.Errorf("-addr: %v", err))
		}
		if *httpBase == "" {
			fatalUsage(fmt.Errorf("-addr needs -http: the same snoopd's JSON base URL"))
		}
	} else if *httpBase != "" {
		fatalUsage(fmt.Errorf("-http needs -addr: both name the same snoopd, or neither for a self-hosted run"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := benchkit.RunSnoopd(benchkit.SnoopdConfig{
		Quick:    *quick,
		Conns:    *conns,
		Rate:     *rate,
		Batch:    *batch,
		WireAddr: *addr,
		HTTPBase: *httpBase,
	})
	if err != nil {
		fatal(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	series := func(name string, s benchkit.SnoopdSeries) {
		fmt.Fprintf(os.Stderr, "%-12s %8.0f req/s  p50 %.0fµs  p95 %.0fµs  p99 %.0fµs\n",
			name, s.RequestsPerSec, s.P50Ns/1e3, s.P95Ns/1e3, s.P99Ns/1e3)
	}
	fmt.Fprintf(os.Stderr, "snoopbench: %d connections × %d requests, batch window %d\n",
		rep.Connections, rep.RequestsPerConn, rep.Batch)
	series("json_single", rep.JSONSingle)
	series("wire_single", rep.WireSingle)
	series("batch_binary", rep.BatchBinary)
	fmt.Fprintf(os.Stderr, "batch binary vs single JSON: %.1fx\n", rep.BatchSpeedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snoopbench:", err)
	os.Exit(1)
}

func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "snoopbench:", err)
	os.Exit(2)
}
