// Command campaign runs a crash-safe design-space sweep: a grid of
// (protocol, sharing level, system size) points driven through the
// SolveBest degradation ladder with bounded parallelism, per-point retry,
// a per-stage circuit breaker, and a journaled checkpoint/resume protocol
// (DESIGN.md §10). Kill it at any instant and run it again with -resume:
// completed points are read back from the journal and only the rest are
// recomputed, deterministically.
//
// Examples:
//
//	campaign -protocols Illinois,Dragon -sharing 5 -ns 1..16 -journal run.jsonl
//	campaign -protocols all -sharing 1,5,20 -ns 1,2,4,8,16,32 \
//	    -max-states -1 -sim-cycles 200000 -journal sweep.jsonl -workers 8
//	campaign -journal sweep.jsonl -resume   # after a crash, with the same grid flags
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"snoopmva"
	"snoopmva/internal/gridspec"
	"snoopmva/internal/tables"
)

func main() {
	var (
		protoNames = flag.String("protocols", "all", "comma-separated protocol names, or \"all\" for every named preset")
		sharings   = flag.String("sharing", "5", "comma-separated Appendix A sharing levels (1, 5, 20)")
		ns         = flag.String("ns", "1..16", "system sizes: comma-separated values and lo..hi ranges")
		maxStates  = flag.Int("max-states", -1, "GTPN state budget per point (0 = engine default, negative = skip the GTPN stage)")
		simCycles  = flag.Int64("sim-cycles", -1, "simulator measurement cycles per point (0 = default, negative = skip the simulator stage)")
		seed       = flag.Uint64("seed", 1, "simulator seed (per point)")
		journal    = flag.String("journal", "", "journal path for checkpoint/resume (empty = no durability)")
		resume     = flag.Bool("resume", false, "continue a previous run from -journal, skipping completed points")
		retries    = flag.Int("retries", 3, "max solve attempts per point")
		workers    = flag.Int("workers", 0, "solver parallelism (0 = GOMAXPROCS)")
		breaker    = flag.Int("breaker", 5, "circuit-breaker threshold: consecutive stage failures before the stage is skipped (negative disables)")
		probe      = flag.Int("breaker-probe", 0, "let one probe through per this many skipped points (0 = never)")
		pointTO    = flag.Duration("point-timeout", 0, "watchdog budget per solve attempt (e.g. 30s; 0 = none)")
		cacheCap   = flag.Int("cache", 0, "memoize solves through a CachedSolver bounded to this many results (0 disables, negative = default bound)")
		timeout    = flag.Duration("timeout", 0, "abort the whole campaign after this long (0 = no limit)")
		format     = flag.String("format", "text", "output format: text, csv, markdown")
		quiet      = flag.Bool("quiet", false, "print only the summary line, not the per-point table")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	points, err := gridspec.BuildGrid(*protoNames, *sharings, *ns, snoopmva.Budget{
		MaxStates: *maxStates,
		SimCycles: *simCycles,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}
	spec := snoopmva.CampaignSpec{
		Points:           points,
		Journal:          *journal,
		Resume:           *resume,
		Workers:          *workers,
		Retry:            snoopmva.CampaignRetry{MaxAttempts: *retries, Jitter: 0.2, Seed: *seed},
		BreakerThreshold: *breaker,
		BreakerProbe:     *probe,
		PointTimeout:     *pointTO,
	}
	var cache *snoopmva.CachedSolver
	if *cacheCap != 0 {
		bound := *cacheCap
		if bound < 0 {
			bound = 0 // NewCachedSolver's default bound
		}
		cache = snoopmva.NewCachedSolver(bound)
		spec.Cache = cache
	}

	start := time.Now()
	res, err := snoopmva.RunCampaign(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		tb := tables.New(fmt.Sprintf("campaign — %d points", len(res.Results)),
			"idx", "protocol", "N", "method", "attempts", "speedup", "U_bus", "status")
		for i, pr := range res.Results {
			status := "ok"
			switch {
			case pr.Err != "":
				status = "FAILED"
			case pr.Resumed:
				status = "resumed"
			case len(pr.SkippedStages) > 0:
				status = "skip:" + strings.Join(pr.SkippedStages, "+")
			case pr.Degraded:
				status = "degraded"
			}
			tb.AddRow(i, points[i].Protocol.String(), points[i].N,
				string(pr.Method), pr.Attempts, pr.Speedup, pr.BusUtilization, status)
		}
		var werr error
		switch *format {
		case "text":
			werr = tb.WriteASCII(os.Stdout)
		case "csv":
			werr = tb.WriteCSV(os.Stdout)
		case "markdown":
			werr = tb.WriteMarkdown(os.Stdout)
		default:
			werr = fmt.Errorf("unknown format %q", *format)
		}
		if werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("campaign: %d points (%d computed, %d resumed, %d failed) in %v",
		len(res.Results), res.Computed, res.Resumed, res.Failed, time.Since(start).Round(time.Millisecond))
	if len(res.OpenStages) > 0 {
		fmt.Printf("; circuit open: %s", strings.Join(res.OpenStages, ", "))
	}
	if cache != nil {
		cs := cache.Stats()
		fmt.Printf("; cache: %d hits, %d misses, %d coalesced (%.0f%% hit rate)",
			cs.Hits, cs.Misses, cs.Coalesced, 100*cs.HitRate())
	}
	fmt.Println()
	if res.Failed > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
