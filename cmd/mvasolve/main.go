// Command mvasolve solves the paper's mean-value-analysis model for one
// protocol / workload / system-size configuration, or sweeps system sizes.
//
// Examples:
//
//	mvasolve -protocol Dragon -sharing 5 -n 10
//	mvasolve -mods 1,4 -sharing 20 -sweep 1,2,4,8,16,32 -format csv
//	mvasolve -protocol Write-Once -sharing 5 -n 10 -tau 4 -hsw 0.8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snoopmva"
	"snoopmva/internal/mva"
	"snoopmva/internal/protocol"
	"snoopmva/internal/tables"
	"snoopmva/internal/workload"
)

func main() {
	var (
		protoName = flag.String("protocol", "Write-Once", "named protocol (Write-Once, Synapse, Berkeley, Illinois, Dragon, RWB, Write-Through)")
		mods      = flag.String("mods", "", "comma-separated modification numbers 1-4 applied to Write-Once (overrides -protocol)")
		sharing   = flag.Int("sharing", 5, "Appendix A sharing level: 1, 5 or 20 (percent)")
		n         = flag.Int("n", 10, "number of processors")
		sweep     = flag.String("sweep", "", "comma-separated system sizes to sweep (overrides -n)")
		format    = flag.String("format", "text", "output format: text, csv, markdown")
		tau       = flag.Float64("tau", 0, "override mean think time τ (cycles)")
		hsw       = flag.Float64("hsw", 0, "override shared-writable hit rate")
		amodP     = flag.Float64("amodp", 0, "override amod_private")
		stress    = flag.Bool("stress", false, "use the Section 4.3 stress-test workload")
		explain   = flag.Bool("explain", false, "print an equation-by-equation breakdown (single -n only)")
		paramFile = flag.String("params", "", "load workload parameters from a JSON file (fields named as in the paper; optional \"base\" seeds an Appendix A level)")
		timeout   = flag.Duration("timeout", 0, "abort the solve after this long (e.g. 30s; 0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	proto, err := pickProtocol(*protoName, *mods)
	if err != nil {
		fatal(err)
	}
	w, err := pickWorkload(*sharing, *stress)
	if err != nil {
		fatal(err)
	}
	if *paramFile != "" {
		p, err := workload.LoadParams(*paramFile)
		if err != nil {
			fatal(err)
		}
		w = fromParams(p)
	}
	if *tau > 0 {
		w.Tau = *tau
	}
	if *hsw > 0 {
		w.HSw = *hsw
	}
	if *amodP > 0 {
		w.AmodPrivate = *amodP
	}

	ns := []int{*n}
	if *sweep != "" {
		ns, err = parseInts(*sweep)
		if err != nil {
			fatal(err)
		}
	}
	results, err := snoopmva.SweepContext(ctx, proto, w, ns)
	if err != nil {
		fatal(err)
	}
	if *explain {
		if len(ns) != 1 {
			fatal(fmt.Errorf("-explain needs a single -n, not a sweep"))
		}
		if err := explainRun(proto, w, ns[0]); err != nil {
			fatal(err)
		}
		return
	}
	tb := tables.New(fmt.Sprintf("MVA results — %v, %d%% sharing", proto, *sharing),
		"N", "speedup", "power", "R", "U_bus", "w_bus", "U_mem", "w_mem", "iterations")
	for _, r := range results {
		tb.AddRow(r.N, r.Speedup, r.ProcessingPower, r.R,
			r.BusUtilization, r.BusWait, r.MemUtilization, r.MemWait, r.Iterations)
	}
	switch *format {
	case "text":
		err = tb.WriteASCII(os.Stdout)
	case "csv":
		err = tb.WriteCSV(os.Stdout)
	case "markdown":
		err = tb.WriteMarkdown(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func pickProtocol(name, mods string) (snoopmva.Protocol, error) {
	if mods != "" {
		nums, err := parseInts(mods)
		if err != nil {
			return snoopmva.Protocol{}, err
		}
		return snoopmva.WithMods(nums...), nil
	}
	p, ok := snoopmva.ProtocolByName(name)
	if !ok {
		return snoopmva.Protocol{}, fmt.Errorf("unknown protocol %q", name)
	}
	return p, nil
}

func pickWorkload(sharing int, stress bool) (snoopmva.Workload, error) {
	if stress {
		return snoopmva.StressWorkload(), nil
	}
	switch sharing {
	case 1, 5, 20:
		return snoopmva.AppendixA(snoopmva.Sharing(sharing)), nil
	default:
		return snoopmva.Workload{}, fmt.Errorf("sharing must be 1, 5 or 20 (got %d)", sharing)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mvasolve:", err)
	os.Exit(1)
}

// explainRun re-solves with the internal model to print the full
// equation-by-equation breakdown.
func explainRun(proto snoopmva.Protocol, w snoopmva.Workload, n int) error {
	var ms protocol.ModSet
	for _, m := range proto.Mods() {
		ms = ms.With(protocol.Mod(m))
	}
	params := workload.Params{
		Tau:      w.Tau,
		PPrivate: w.PPrivate, PSro: w.PSro, PSw: w.PSw,
		HPrivate: w.HPrivate, HSro: w.HSro, HSw: w.HSw,
		RPrivate: w.RPrivate, RSw: w.RSw,
		AmodPrivate: w.AmodPrivate, AmodSw: w.AmodSw,
		CsupplySro: w.CsupplySro, CsupplySw: w.CsupplySw,
		WbCsupply: w.WbCsupply,
		RepP:      w.RepP, RepSw: w.RepSw,
	}
	m := mva.Model{
		Workload:         params,
		Mods:             ms,
		RawParams:        w.FixedParams,
		WriteThroughBase: proto.Name() == "Write-Through",
	}
	res, err := m.Solve(n, mva.Options{})
	if err != nil {
		return err
	}
	return mva.Explain(os.Stdout, res)
}

// fromParams converts internal workload parameters to the public type.
func fromParams(p workload.Params) snoopmva.Workload {
	return snoopmva.Workload{
		Tau:      p.Tau,
		PPrivate: p.PPrivate, PSro: p.PSro, PSw: p.PSw,
		HPrivate: p.HPrivate, HSro: p.HSro, HSw: p.HSw,
		RPrivate: p.RPrivate, RSw: p.RSw,
		AmodPrivate: p.AmodPrivate, AmodSw: p.AmodSw,
		CsupplySro: p.CsupplySro, CsupplySw: p.CsupplySw,
		WbCsupply: p.WbCsupply,
		RepP:      p.RepP, RepSw: p.RepSw,
	}
}
