package snoopmva

// Cross-model integration: the repository's central claim is that three
// independent implementations of the same machine — analytic MVA, exact
// GTPN, and cycle-level simulation — agree. This test sweeps the full
// protocol family over all sharing levels at N=4 and checks the triangle
// of agreements in one place.

import (
	"math"
	"testing"
)

func TestThreeModelTriangle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	const n = 4
	for _, sharing := range []Sharing{Sharing1, Sharing5, Sharing20} {
		w := AppendixA(sharing)
		for _, p := range Protocols() {
			p := p
			mvaRes, err := Solve(p, w, n)
			if err != nil {
				t.Fatalf("%v %d%%: mva: %v", p, int(sharing), err)
			}
			det, err := SolveDetailed(p, w, n)
			if err != nil {
				t.Fatalf("%v %d%%: gtpn: %v", p, int(sharing), err)
			}
			sim, err := Simulate(p, w, n, SimOptions{Seed: 101, MeasureCycles: 150000})
			if err != nil {
				t.Fatalf("%v %d%%: sim: %v", p, int(sharing), err)
			}
			// MVA vs exact GTPN: tight (shared mechanics, the paper's
			// headline claim).
			if rel := math.Abs(mvaRes.Speedup-det.Speedup) / det.Speedup; rel > 0.06 {
				t.Errorf("%v %d%%: MVA %.3f vs GTPN %.3f (rel %.1f%%)",
					p, int(sharing), mvaRes.Speedup, det.Speedup, rel*100)
			}
			// Simulation: independent workload realization (emergent amod,
			// csupply, replacement) — a looser band, but the same
			// neighborhood.
			if rel := math.Abs(mvaRes.Speedup-sim.Speedup) / sim.Speedup; rel > 0.15 {
				t.Errorf("%v %d%%: MVA %.3f vs sim %.3f (rel %.1f%%)",
					p, int(sharing), mvaRes.Speedup, sim.Speedup, rel*100)
			}
		}
	}
}

// The protocol ranking is the qualitative result every model must agree
// on. Check the ordering triple (WT <= WO <= Dragon) in all three models
// at once.
func TestThreeModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	const n = 6
	w := AppendixA(Sharing5)
	type triple struct{ wt, wo, dragon float64 }
	var mvaT, detT, simT triple
	get := func(p Protocol) (float64, float64, float64) {
		m, err := Solve(p, w, n)
		if err != nil {
			t.Fatal(err)
		}
		d, err := SolveDetailed(p, w, n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Simulate(p, w, n, SimOptions{Seed: 55, MeasureCycles: 150000})
		if err != nil {
			t.Fatal(err)
		}
		return m.Speedup, d.Speedup, s.Speedup
	}
	mvaT.wt, detT.wt, simT.wt = get(WriteThrough())
	mvaT.wo, detT.wo, simT.wo = get(WriteOnce())
	mvaT.dragon, detT.dragon, simT.dragon = get(Dragon())
	for name, tr := range map[string]triple{"mva": mvaT, "gtpn": detT, "sim": simT} {
		if !(tr.wt < tr.wo && tr.wo < tr.dragon) {
			t.Errorf("%s ordering broken: WT=%.3f WO=%.3f Dragon=%.3f",
				name, tr.wt, tr.wo, tr.dragon)
		}
	}
}
