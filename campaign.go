package snoopmva

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snoopmva/internal/faultinject"
	"snoopmva/internal/journal"
	"snoopmva/internal/resilience"
)

// This file is the campaign runner: crash-safe execution of a design-space
// sweep — an arbitrary grid of (protocol, workload, N, budget) points —
// through the SolveBest degradation ladder, with bounded parallelism,
// per-point retry, a per-stage circuit breaker, and a journaled
// checkpoint/resume protocol (DESIGN.md §10).
//
// The durability contract: every completed point is appended to the
// journal (CRC-checksummed, fsynced) before the runner moves on, so a
// crash at any instant loses at most the points that were still in
// flight. Re-running with Resume skips journaled points and recomputes
// only the rest; because every model is deterministic given its seeds,
// the union is bitwise-identical to what an uninterrupted run would have
// journaled.

// CampaignPoint is one grid point of a design-space campaign.
type CampaignPoint struct {
	Protocol Protocol
	Workload Workload
	// N is the system size to solve for.
	N int
	// Budget bounds the SolveBest ladder at this point (zero value:
	// defaults; see Budget).
	Budget Budget
}

// CampaignRetry tunes the per-point retry policy. The zero value means a
// single attempt. Delays use exponential backoff with deterministic
// jitter seeded per point from Seed, so a resumed campaign retries
// identically to an uninterrupted one.
type CampaignRetry struct {
	// MaxAttempts bounds total attempts per point (<1 means 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (0 means 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (0 means 2s).
	MaxDelay time.Duration
	// Jitter spreads delays by ±this fraction (0 means none).
	Jitter float64
	// Seed drives the jitter streams.
	Seed uint64
}

// CampaignSpec describes a campaign: the point grid plus execution
// policy. The zero values of the policy fields are usable defaults.
type CampaignSpec struct {
	// Points is the grid to solve. Point identity for journaling and
	// resume is the index into this slice, so a resumed spec must present
	// the same points in the same order (enforced by fingerprint).
	Points []CampaignPoint
	// Journal is the path of the result journal; "" runs without
	// durability (no resume possible).
	Journal string
	// Resume continues from an existing journal, skipping completed
	// points. Without it, a non-empty journal is an error rather than
	// being silently overwritten.
	Resume bool
	// Workers bounds solver parallelism (0 means GOMAXPROCS).
	Workers int
	// Retry is the per-point retry policy.
	Retry CampaignRetry
	// BreakerThreshold is the number of consecutive failures of a ladder
	// stage (across points) after which the stage is skipped for
	// subsequent points instead of re-burning its budget. 0 means 5;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerProbe, when positive, lets one probe attempt through per
	// this many skipped points, so a recovered stage can close its
	// circuit again. 0 never probes.
	BreakerProbe int
	// PointTimeout is the watchdog budget of one solve attempt; a stuck
	// stage is converted into a typed, retryable timeout. 0 disables.
	PointTimeout time.Duration
	// Cache, when non-nil, routes every point's solve through the given
	// CachedSolver: duplicate grid points (and campaigns re-run without a
	// journal) are served from the cache, and identical points racing in
	// different workers coalesce into one solve. Results are identical
	// either way — the models are deterministic — so journaling and resume
	// semantics are unchanged.
	Cache *CachedSolver
}

// PointResult is the journaled outcome of one campaign point.
type PointResult struct {
	// Index is the point's position in CampaignSpec.Points.
	Index int `json:"index"`
	// Attempts is the number of solve attempts made (≥1).
	Attempts int `json:"attempts"`
	// Method, Degraded and FallbackReason carry the BestResult
	// provenance (empty on a failed point).
	Method         Method `json:"method,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// SkippedStages lists ladder stages the circuit breaker skipped for
	// this point (they were neither attempted nor counted as failures).
	SkippedStages []string `json:"skipped_stages,omitempty"`
	// Headline measures (zero on a failed point).
	N              int     `json:"n"`
	Speedup        float64 `json:"speedup"`
	R              float64 `json:"r"`
	BusUtilization float64 `json:"bus_utilization"`
	// Err is the final error of a permanently failed point ("" on
	// success). Failed points are journaled too: they are completed work.
	Err string `json:"err,omitempty"`
	// Resumed is true when the result was loaded from the journal rather
	// than computed by this run (not persisted; meaningful per run).
	Resumed bool `json:"-"`
}

// CampaignResult is the aggregate outcome of RunCampaign.
type CampaignResult struct {
	// Results holds one entry per spec point, in input order.
	Results []PointResult
	// Computed counts points solved by this run; Resumed counts points
	// loaded from the journal; Failed counts points (either kind) whose
	// Err is non-empty. Computed+Resumed == len(Results).
	Computed, Resumed, Failed int
	// OpenStages lists ladder stages whose circuit was open when the
	// campaign finished.
	OpenStages []string
}

// Journal record schema. Every line of the campaign journal is one of
// these, discriminated by Kind: a single "header" first (fingerprinting
// the spec so a resume with a different grid is refused), then "point"
// and "breaker" records in completion order.
const campaignJournalVersion = 1

type campaignRecord struct {
	Kind string `json:"kind"`
	// header fields
	Version     int    `json:"version,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Points      int    `json:"points,omitempty"`
	// point payload
	Point *PointResult `json:"point,omitempty"`
	// breaker state change
	Stage    string `json:"stage,omitempty"`
	Failures int    `json:"failures,omitempty"`
	Open     bool   `json:"open,omitempty"`
}

// errCampaignCrash marks the injected mid-run crash of the chaos tests.
var errCampaignCrash = errors.New("snoopmva: campaign: injected crash")

// SpecMismatchError reports a Resume against a journal written by a
// different campaign spec: the header fingerprint in the journal does not
// match the fingerprint of the grid being resumed, so continuing would
// silently mix results of different campaigns. It names both fingerprints
// so the caller can tell which side changed; errors.Is matches
// ErrInvalidInput.
type SpecMismatchError struct {
	// Path is the journal file that refused the resume.
	Path string
	// JournalFingerprint and JournalPoints describe the campaign the
	// journal was written by.
	JournalFingerprint string
	JournalPoints      int
	// SpecFingerprint and SpecPoints describe the campaign being resumed.
	SpecFingerprint string
	SpecPoints      int
}

func (e *SpecMismatchError) Error() string {
	return fmt.Sprintf("snoopmva: journal %s was written by a different campaign spec: journal fingerprint %s (%d points) != spec fingerprint %s (%d points); resume with the original grid, or start a fresh journal",
		e.Path, e.JournalFingerprint, e.JournalPoints, e.SpecFingerprint, e.SpecPoints)
}

// Unwrap classifies the mismatch as invalid input for errors.Is.
func (e *SpecMismatchError) Unwrap() error { return ErrInvalidInput }

// ladder stage keys, matching Method values.
const (
	stageGTPN = string(MethodGTPN)
	stageSim  = string(MethodSimulation)
	stageMVA  = string(MethodMVA)
)

// RunCampaign executes the campaign described by spec. Points that fail
// permanently (after retries) are recorded with a non-empty Err and do
// not stop the campaign; RunCampaign itself returns an error only for an
// unusable spec or journal, or when ctx fires (ErrCanceled), in which
// case completed points are already durable in the journal and a Resume
// run picks up exactly where this one stopped.
func RunCampaign(ctx context.Context, spec CampaignSpec) (res CampaignResult, err error) {
	defer guard(&err)
	started := time.Now()
	defer func() {
		if err == nil {
			recordCampaign(res, time.Since(started))
		}
	}()
	if len(spec.Points) == 0 {
		return CampaignResult{}, fmt.Errorf("snoopmva: campaign has no points: %w", ErrInvalidInput)
	}
	if spec.Resume && spec.Journal == "" {
		return CampaignResult{}, fmt.Errorf("snoopmva: campaign Resume requires a Journal path: %w", ErrInvalidInput)
	}

	var breaker *resilience.Breaker
	if spec.BreakerThreshold >= 0 {
		threshold := spec.BreakerThreshold
		if threshold == 0 {
			threshold = 5
		}
		breaker = resilience.NewBreaker(threshold, spec.BreakerProbe)
	}

	fp := CampaignFingerprint(spec.Points)
	completed := map[int]PointResult{}
	var cj *CampaignJournal
	if spec.Journal != "" {
		j, jerr := OpenCampaignJournal(spec.Journal, fp, len(spec.Points), spec.Resume)
		if jerr != nil {
			return CampaignResult{}, jerr
		}
		cj = j
		defer cj.Close()
		completed = cj.Completed()
		if breaker != nil {
			breaker.Restore(cj.breakerStates())
		}
	}

	results := make([]PointResult, len(spec.Points))
	pending := make([]int, 0, len(spec.Points))
	for idx := range spec.Points {
		if pr, ok := completed[idx]; ok {
			pr.Resumed = true
			results[idx] = pr
		} else {
			pending = append(pending, idx)
		}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu          sync.Mutex // serializes journal appends and crash checks
		recorded    int        // records appended by this run
		crashed     atomic.Bool
		lastBreaker = map[string]resilience.BreakerState{}
	)
	record := func(pr PointResult) error {
		mu.Lock()
		defer mu.Unlock()
		if crashed.Load() {
			return errCampaignCrash
		}
		if cj != nil {
			// After one failed append, CampaignJournal latches itself off and
			// every later Append returns the original error, so a partial
			// record left by a failed rollback is never concatenated onto.
			if err := cj.Append(pr); err != nil {
				return err
			}
			recorded++
			if h := faultinject.Hooks(); h != nil && h.CampaignCrash != nil && h.CampaignCrash(recorded) {
				crashed.Store(true)
				return errCampaignCrash
			}
			if breaker != nil {
				for _, st := range breaker.Snapshot() {
					if lastBreaker[st.Key] == st {
						continue
					}
					lastBreaker[st.Key] = st
					if err := cj.appendBreaker(st); err != nil {
						return err
					}
					recorded++
				}
			}
		}
		results[pr.Index] = pr
		return nil
	}

	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	work := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if ctx.Err() != nil || crashed.Load() {
					continue // drain; in-flight state is preserved by the journal
				}
				pr, perr := solveCampaignPoint(ctx, spec, breaker, idx)
				if perr != nil {
					errOnce.Do(func() { firstErr = perr })
					continue // aborted attempt: the point is not completed, resume will redo it
				}
				if rerr := record(pr); rerr != nil {
					errOnce.Do(func() { firstErr = rerr })
				}
			}
		}()
	}
feed:
	for _, idx := range pending {
		if ctx.Err() != nil || crashed.Load() {
			break
		}
		// Select on the send: with every worker busy in a slow solve, a
		// bare send would park the feeder with no cancellation path and
		// could hand a point to a worker after ctx had already fired.
		select {
		case work <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	if cerr := ctx.Err(); cerr != nil {
		return CampaignResult{}, fmt.Errorf("snoopmva: campaign interrupted: %w", classify(cerr))
	}
	if firstErr != nil {
		return CampaignResult{}, fmt.Errorf("snoopmva: campaign: %w", firstErr)
	}

	res.Results = results
	for _, pr := range results {
		if pr.Resumed {
			res.Resumed++
		} else {
			res.Computed++
		}
		if pr.Err != "" {
			res.Failed++
		}
	}
	if breaker != nil {
		for _, st := range breaker.Snapshot() {
			if st.Open {
				res.OpenStages = append(res.OpenStages, st.Key)
			}
		}
	}
	return res, nil
}

// CampaignJournal is an open campaign checkpoint log: the crash-safe
// journal of DESIGN.md §10 with the campaign record schema (fingerprinted
// header, point records, breaker records) layered on top. It is the
// durability substrate shared by RunCampaign and the distributed
// coordinator (internal/dispatch, cmd/campaignd) — both write the same
// on-disk format, so their journals are mutually resumable for the same
// grid.
type CampaignJournal struct {
	jn        *journal.Journal
	completed map[int]PointResult
	breakers  map[string]resilience.BreakerState
	// appendErr latches the journal off after one failed append: the
	// rollback of a failed append can itself fail (e.g. on ENOSPC), and
	// appending after that would concatenate onto a partial record,
	// turning a recoverable torn tail into mid-file corruption.
	appendErr error
}

// OpenCampaignJournal opens (or creates) the campaign journal at path,
// verifies its header against the given spec fingerprint and point count,
// loads completed points, and compacts the journal back to a canonical
// record sequence via an atomic rotation (this also rewrites away any
// recovered torn tail).
//
// A fresh journal is stamped with a header carrying the fingerprint; a
// non-empty journal requires resume (otherwise it is refused rather than
// silently overwritten), and a resume against a journal written by a
// different grid fails with a *SpecMismatchError naming both fingerprints.
func OpenCampaignJournal(path, fingerprint string, points int, resume bool) (*CampaignJournal, error) {
	j, info, err := journal.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snoopmva: campaign journal: %w", err)
	}
	fail := func(err error) (*CampaignJournal, error) {
		j.Close()
		return nil, err
	}
	if len(info.Payloads) == 0 {
		header := campaignRecord{Kind: "header", Version: campaignJournalVersion, Fingerprint: fingerprint, Points: points}
		if err := j.Append(header); err != nil {
			return fail(fmt.Errorf("snoopmva: campaign journal: %w", err))
		}
		return &CampaignJournal{jn: j, completed: map[int]PointResult{}, breakers: map[string]resilience.BreakerState{}}, nil
	}
	if !resume {
		return fail(fmt.Errorf("snoopmva: journal %s already holds a campaign; set Resume to continue it: %w",
			path, ErrInvalidInput))
	}
	records := make([]campaignRecord, 0, len(info.Payloads))
	for i, p := range info.Payloads {
		var rec campaignRecord
		if uerr := json.Unmarshal(p, &rec); uerr != nil {
			return fail(fmt.Errorf("snoopmva: campaign journal record %d: %w: %w", i, ErrInvalidInput, uerr))
		}
		records = append(records, rec)
	}
	head := records[0]
	if head.Kind != "header" || head.Version != campaignJournalVersion {
		return fail(fmt.Errorf("snoopmva: journal %s is not a version-%d campaign journal: %w",
			path, campaignJournalVersion, ErrInvalidInput))
	}
	if head.Fingerprint != fingerprint || head.Points != points {
		return fail(&SpecMismatchError{
			Path:               path,
			JournalFingerprint: head.Fingerprint,
			JournalPoints:      head.Points,
			SpecFingerprint:    fingerprint,
			SpecPoints:         points,
		})
	}
	completed := map[int]PointResult{}
	order := []int{} // first-seen completion order, for canonical rewrite
	breakerState := map[string]resilience.BreakerState{}
	for i, rec := range records[1:] {
		switch rec.Kind {
		case "point":
			if rec.Point == nil || rec.Point.Index < 0 || rec.Point.Index >= points {
				return fail(fmt.Errorf("snoopmva: campaign journal record %d: bad point index: %w", i+1, ErrInvalidInput))
			}
			if _, dup := completed[rec.Point.Index]; dup {
				continue // first record wins; duplicates are compacted away below
			}
			completed[rec.Point.Index] = *rec.Point
			order = append(order, rec.Point.Index)
		case "breaker":
			breakerState[rec.Stage] = resilience.BreakerState{Key: rec.Stage, Failures: rec.Failures, Open: rec.Open}
		default:
			return fail(fmt.Errorf("snoopmva: campaign journal record %d: unknown kind %q: %w", i+1, rec.Kind, ErrInvalidInput))
		}
	}
	// Canonical rewrite: header, then unique point records in first-seen
	// order, then the latest breaker states.
	canon := [][]byte{}
	appendRec := func(rec campaignRecord) error {
		b, merr := json.Marshal(rec)
		if merr != nil {
			return merr
		}
		canon = append(canon, b)
		return nil
	}
	if err := appendRec(head); err != nil {
		return fail(fmt.Errorf("snoopmva: campaign journal: %w", err))
	}
	for _, idx := range order {
		pr := completed[idx]
		if err := appendRec(campaignRecord{Kind: "point", Point: &pr}); err != nil {
			return fail(fmt.Errorf("snoopmva: campaign journal: %w", err))
		}
	}
	for _, st := range resilienceStatesSorted(breakerState) {
		if err := appendRec(campaignRecord{Kind: "breaker", Stage: st.Key, Failures: st.Failures, Open: st.Open}); err != nil {
			return fail(fmt.Errorf("snoopmva: campaign journal: %w", err))
		}
	}
	if err := j.Rotate(canon); err != nil {
		return fail(fmt.Errorf("snoopmva: campaign journal: %w", err))
	}
	return &CampaignJournal{jn: j, completed: completed, breakers: breakerState}, nil
}

// Completed returns the points already journaled, by index. The map is
// the journal's own state: callers must treat it as read-only.
func (cj *CampaignJournal) Completed() map[int]PointResult { return cj.completed }

// Append journals one completed point durably (fsynced before return).
// After one failed append the journal latches off and every later Append
// returns the original error, so a partial record left by a failed
// rollback is never concatenated onto.
func (cj *CampaignJournal) Append(pr PointResult) error {
	if cj.appendErr != nil {
		return cj.appendErr
	}
	if err := cj.jn.Append(campaignRecord{Kind: "point", Point: &pr}); err != nil {
		cj.appendErr = err
		return err
	}
	return nil
}

// appendBreaker journals one circuit-breaker state change, with the same
// latch discipline as Append. The distributed coordinator does not
// journal breaker records — its per-worker circuits track live processes,
// which a resumed coordinator re-probes from scratch — so this stays
// root-only.
func (cj *CampaignJournal) appendBreaker(st resilience.BreakerState) error {
	if cj.appendErr != nil {
		return cj.appendErr
	}
	if err := cj.jn.Append(campaignRecord{Kind: "breaker", Stage: st.Key, Failures: st.Failures, Open: st.Open}); err != nil {
		cj.appendErr = err
		return err
	}
	return nil
}

// breakerStates returns the journaled breaker states in sorted order.
func (cj *CampaignJournal) breakerStates() []resilience.BreakerState {
	return resilienceStatesSorted(cj.breakers)
}

// Close releases the underlying journal file. Appended records remain
// durable.
func (cj *CampaignJournal) Close() error { return cj.jn.Close() }

func resilienceStatesSorted(m map[string]resilience.BreakerState) []resilience.BreakerState {
	b := resilience.NewBreaker(1, 0)
	states := make([]resilience.BreakerState, 0, len(m))
	for _, st := range m {
		states = append(states, st)
	}
	b.Restore(states)
	return b.Snapshot() // sorted by key
}

// solveCampaignPoint runs one grid point through breaker gating, the
// retry policy and the watchdog. A non-nil error means the attempt was
// aborted by ctx (the point stays pending); a permanent failure is
// reported inside the PointResult instead.
func solveCampaignPoint(ctx context.Context, spec CampaignSpec, breaker *resilience.Breaker, idx int) (PointResult, error) {
	pt := spec.Points[idx]
	budget := pt.Budget
	var skipped []string
	if breaker != nil {
		if budget.MaxStates >= 0 && !breaker.Allow(stageGTPN) {
			budget.MaxStates = -1
			skipped = append(skipped, stageGTPN)
			campaignStageSkipped[stageGTPN].Inc()
		}
		if budget.SimCycles >= 0 && !breaker.Allow(stageSim) {
			budget.SimCycles = -1
			skipped = append(skipped, stageSim)
			campaignStageSkipped[stageSim].Inc()
		}
	}

	policy := resilience.RetryPolicy{
		MaxAttempts: spec.Retry.MaxAttempts,
		BaseDelay:   spec.Retry.BaseDelay,
		MaxDelay:    spec.Retry.MaxDelay,
		Jitter:      spec.Retry.Jitter,
		// Mix the point index into the seed so each point gets its own —
		// but still reproducible — jitter stream.
		Seed: spec.Retry.Seed ^ (uint64(idx+1) * 0x9e3779b97f4a7c15),
	}
	classify := func(err error) resilience.Class {
		if ctx.Err() != nil {
			return resilience.Aborted
		}
		var te *resilience.TimeoutError
		if errors.As(err, &te) {
			return resilience.Retryable // a stuck stage may be transient load
		}
		switch {
		case errors.Is(err, ErrInvalidInput), errors.Is(err, ErrNoConvergence),
			errors.Is(err, ErrDiverged), errors.Is(err, ErrStateExplosion):
			return resilience.Permanent // deterministic: retrying reproduces it
		case errors.Is(err, ErrCanceled):
			return resilience.Aborted
		}
		return resilience.Retryable // unknown ≈ transient (fault-injected, I/O, …)
	}

	var best BestResult
	attempts, err := resilience.Retry(ctx, policy, classify, func(ctx context.Context, attempt int) error {
		if h := faultinject.Hooks(); h != nil && h.PointFault != nil {
			if ferr := h.PointFault(idx, attempt); ferr != nil {
				return ferr
			}
		}
		// r is scoped to this attempt because the watchdog abandons a stuck
		// solver goroutine: after a timeout that goroutine may still finish
		// and write its result, which must land in a dead local rather than
		// race with the next attempt. best is assigned only after Watchdog
		// returns nil, where the done-channel receive inside Watchdog
		// provides the happens-before edge for reading r.
		var r BestResult
		solve := SolveBest
		if spec.Cache != nil {
			solve = spec.Cache.SolveBest
		}
		werr := resilience.Watchdog(ctx, fmt.Sprintf("campaign point %d", idx), spec.PointTimeout,
			func(ctx context.Context) error {
				br, serr := solve(ctx, pt.Protocol, pt.Workload, pt.N, budget)
				if serr != nil {
					return serr
				}
				r = br
				return nil
			})
		if werr != nil {
			return werr
		}
		best = r
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return PointResult{}, err // aborted: not completed, not journaled
	}

	pr := PointResult{Index: idx, Attempts: attempts, SkippedStages: skipped}
	if err != nil {
		pr.Err = err.Error()
		if breaker != nil {
			// The whole ladder failed: every stage the (trimmed) budget
			// enabled burned its budget without a result, so each counts as
			// a breaker failure — otherwise a persistently failing stage
			// would never trip the breaker on outright point failures and
			// its budget would be re-burned on every subsequent point.
			recordBreakerOutcomes(breaker, budget, "")
		}
		return pr, nil
	}
	pr.Method = best.Method
	pr.Degraded = best.Degraded
	pr.FallbackReason = best.FallbackReason
	pr.N = best.N
	pr.Speedup = best.Speedup
	pr.R = best.R
	pr.BusUtilization = best.BusUtilization
	if breaker != nil {
		recordBreakerOutcomes(breaker, budget, best.Method)
	}
	return pr, nil
}

// recordBreakerOutcomes feeds one completed point's provenance into the
// breaker: every ladder stage enabled by the (possibly already
// breaker-trimmed) budget that precedes the successful method failed, the
// successful method's own stage succeeded, and stages after it were
// never attempted. An empty success means the point failed permanently —
// every enabled stage, the MVA rung included, counts as a failure.
func recordBreakerOutcomes(breaker *resilience.Breaker, budget Budget, success Method) {
	stages := []struct {
		key     string
		enabled bool
	}{
		{stageGTPN, budget.MaxStates >= 0},
		{stageSim, budget.SimCycles >= 0},
		{stageMVA, true},
	}
	for _, st := range stages {
		if !st.enabled {
			continue
		}
		if st.key == string(success) {
			breaker.Success(st.key)
			return
		}
		breaker.Failure(st.key)
	}
}

// CampaignFingerprint hashes a point grid so a journal can refuse a
// resume under a different spec. It covers everything that changes
// results: protocol, workload, system size and budget of every point, in
// order — but not the execution policy (workers, retries, transport), so
// a campaign may be resumed under different parallelism, or by the
// distributed coordinator, without being refused.
func CampaignFingerprint(points []CampaignPoint) string {
	type pointKey struct {
		Protocol     string   `json:"protocol"`
		WriteThrough bool     `json:"write_through"`
		Workload     Workload `json:"workload"`
		N            int      `json:"n"`
		Budget       Budget   `json:"budget"`
	}
	keys := make([]pointKey, len(points))
	for i, pt := range points {
		keys[i] = pointKey{
			Protocol:     pt.Protocol.String(),
			WriteThrough: pt.Protocol.inner.WriteThroughBase,
			Workload:     pt.Workload,
			N:            pt.N,
			Budget:       pt.Budget,
		}
	}
	b, err := json.Marshal(keys)
	if err != nil {
		// Workload/Budget are plain value structs; Marshal cannot fail on
		// them short of an internal invariant violation.
		panic(fmt.Sprintf("snoopmva: internal invariant violated: campaign fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
